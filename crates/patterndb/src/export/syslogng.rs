//! syslog-ng pattern database XML export (paper Fig. 3).
//!
//! Produces a `patterndb` version 4 document: one `<ruleset>` per service,
//! one `<rule>` per pattern (the rule id is the reproducible SHA1 pattern
//! id), the pattern translated into syslog-ng's `@PARSER:name@` syntax, and
//! the stored examples as `<test_message>` entries — "these test cases are
//! used by syslog-ng to ensure that all the example messages match their
//! pattern, and no other in the whole pattern database".

use super::ExportEntry;
use sequence_core::{PatternElement, TokenType};
use std::collections::BTreeMap;

/// Render the full pattern database XML.
pub fn render(entries: &[ExportEntry]) -> String {
    let mut by_service: BTreeMap<&str, Vec<&ExportEntry>> = BTreeMap::new();
    for e in entries {
        by_service.entry(&e.stored.service).or_default().push(e);
    }
    let mut out = String::new();
    out.push_str("<?xml version='1.0' encoding='UTF-8'?>\n");
    out.push_str("<patterndb version='4' pub_date='1970-01-01'>\n");
    for (service, group) in &by_service {
        out.push_str(&format!(
            "  <ruleset name='{0}' id='ruleset-{0}'>\n    <pattern>{0}</pattern>\n    <rules>\n",
            xml_escape(service)
        ));
        for e in group {
            out.push_str(&format!(
                "      <rule provider='sequence-rtg' id='{}' class='system'>\n",
                xml_escape(&e.stored.id)
            ));
            out.push_str("        <patterns>\n");
            out.push_str(&format!(
                "          <pattern>{}</pattern>\n",
                xml_escape(&pattern_to_syslogng(&e.pattern))
            ));
            out.push_str("        </patterns>\n");
            if !e.stored.examples.is_empty() {
                out.push_str("        <examples>\n");
                for ex in &e.stored.examples {
                    out.push_str("          <example>\n");
                    out.push_str(&format!(
                        "            <test_message program='{}'>{}</test_message>\n",
                        xml_escape(service),
                        xml_escape(ex)
                    ));
                    out.push_str("          </example>\n");
                }
                out.push_str("        </examples>\n");
            }
            out.push_str(&format!(
                "        <!-- count={} last_matched={} complexity={:.3} -->\n",
                e.stored.count, e.stored.last_matched, e.stored.complexity
            ));
            out.push_str("      </rule>\n");
        }
        out.push_str("    </rules>\n  </ruleset>\n");
    }
    out.push_str("</patterndb>\n");
    out
}

/// Translate a pattern into syslog-ng patterndb syntax.
///
/// String variables become `@ESTRING:name:<delimiter>@` when a delimiter is
/// known (the next element's leading space or first character) and
/// `@ANYSTRING:name@` in final position. Because `ESTRING` *consumes* its
/// delimiter, the delimiter is then omitted from the literal text that
/// follows. Typed variables map onto syslog-ng's native parsers.
pub fn pattern_to_syslogng(p: &sequence_core::Pattern) -> String {
    let els = p.elements();
    let mut out = String::new();
    let mut swallow_space = false;
    for (i, el) in els.iter().enumerate() {
        let space = match el {
            PatternElement::Literal { space_before, .. }
            | PatternElement::Variable { space_before, .. } => *space_before,
            PatternElement::IgnoreRest => true,
        };
        if i > 0 && space && !swallow_space {
            out.push(' ');
        }
        swallow_space = false;
        match el {
            PatternElement::Literal { text, .. } => {
                out.push_str(&text.replace('@', "@@"));
            }
            PatternElement::Variable { name, ty, .. } => match ty {
                TokenType::Integer => out.push_str(&format!("@NUMBER:{name}@")),
                TokenType::Float => out.push_str(&format!("@FLOAT:{name}@")),
                TokenType::Ipv4 => out.push_str(&format!("@IPv4:{name}@")),
                TokenType::Ipv6 => out.push_str(&format!("@IPv6:{name}@")),
                TokenType::Mac => out.push_str(&format!("@MACADDR:{name}@")),
                TokenType::Email => out.push_str(&format!("@EMAIL:{name}@")),
                TokenType::Hex
                | TokenType::Url
                | TokenType::Path
                | TokenType::Time
                | TokenType::Hostname
                | TokenType::Literal => {
                    // Free-text-ish field: ESTRING up to the next delimiter.
                    match next_delimiter(els, i) {
                        Some(d) => {
                            out.push_str(&format!("@ESTRING:{name}:{d}@"));
                            if d == ' ' {
                                swallow_space = true;
                            }
                        }
                        None => out.push_str(&format!("@ANYSTRING:{name}@")),
                    }
                }
            },
            PatternElement::IgnoreRest => {
                out.push_str("@ANYSTRING:rest@");
            }
        }
    }
    out
}

/// The delimiter for an ESTRING at position `i`: the space before the next
/// element, or the next literal's first character. `None` in final position.
fn next_delimiter(els: &[PatternElement], i: usize) -> Option<char> {
    let next = els.get(i + 1)?;
    match next {
        PatternElement::Literal { text, space_before } => {
            if *space_before {
                Some(' ')
            } else {
                text.chars().next()
            }
        }
        PatternElement::Variable { space_before, .. } => {
            if *space_before {
                Some(' ')
            } else {
                // Two adjacent variables with no delimiter: not expressible
                // as ESTRING; fall back to space.
                Some(' ')
            }
        }
        PatternElement::IgnoreRest => Some(' '),
    }
}

/// Escape XML text content and attribute values.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '\'' => out.push_str("&apos;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredPattern;
    use sequence_core::Pattern;

    fn entry(service: &str, pattern: &str, examples: &[&str]) -> ExportEntry {
        let p = Pattern::parse(pattern).unwrap();
        ExportEntry {
            stored: StoredPattern {
                id: crate::sha1::pattern_id(pattern, service),
                service: service.to_string(),
                pattern_text: pattern.to_string(),
                count: 5,
                first_seen: 1,
                last_matched: 2,
                complexity: p.complexity_score(),
                examples: examples.iter().map(|s| s.to_string()).collect(),
                promoted: false,
            },
            pattern: p,
        }
    }

    #[test]
    fn paper_example_translation() {
        let p = Pattern::parse("%action% from %srcip:ipv4% port %srcport:integer%").unwrap();
        assert_eq!(
            pattern_to_syslogng(&p),
            "@ESTRING:action: @from @IPv4:srcip@ port @NUMBER:srcport@"
        );
    }

    #[test]
    fn trailing_string_is_anystring() {
        let p = Pattern::parse("session closed for %user%").unwrap();
        assert_eq!(
            pattern_to_syslogng(&p),
            "session closed for @ANYSTRING:user@"
        );
    }

    #[test]
    fn ignore_rest_is_anystring() {
        let p = Pattern::parse("panic : %...%").unwrap();
        assert!(pattern_to_syslogng(&p).ends_with("@ANYSTRING:rest@"));
    }

    #[test]
    fn at_sign_escaped_in_literals() {
        let p = Pattern::parse("user root@box logged in").unwrap();
        // Note: "root@box" stays a literal here because the pattern was
        // authored that way.
        assert!(pattern_to_syslogng(&p).contains("root@@box"));
    }

    #[test]
    fn estring_with_punctuation_delimiter() {
        let p = Pattern::parse("job %name%, done").unwrap();
        assert_eq!(pattern_to_syslogng(&p), "job @ESTRING:name:,@, done");
    }

    #[test]
    fn full_document_structure() {
        let doc = render(&[
            entry(
                "sshd",
                "%action% from %srcip:ipv4% port %srcport:integer%",
                &["x from 1.2.3.4 port 5"],
            ),
            entry("nginx", "GET %path% done", &[]),
        ]);
        assert!(doc.starts_with("<?xml"));
        assert_eq!(doc.matches("<ruleset").count(), 2);
        assert_eq!(doc.matches("<rule ").count(), 2);
        assert!(doc.contains("provider='sequence-rtg'"));
        assert!(doc.contains("<test_message program='sshd'>x from 1.2.3.4 port 5</test_message>"));
        assert!(doc.contains("</patterndb>"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&'\"c"), "a&lt;b&gt;&amp;&apos;&quot;c");
        let doc = render(&[entry(
            "svc",
            "found %n:integer% <errors>",
            &["found 2 <errors>"],
        )]);
        assert!(doc.contains("&lt;errors&gt;"));
        assert!(!doc.contains("<errors>"));
    }
}
