//! The persistent pattern store.
//!
//! "Analysing system logs in a continuous way requires to be able to preserve
//! patterns between the processing of different message batches. To this end,
//! Sequence-RTG stores the patterns in a SQL database in a one-to-many
//! relationship with their related services. We also include up to three
//! unique examples for each pattern [...] we attach a set of statistics to
//! the messages matched to each pattern [...] the number of times that the
//! pattern has been matched since first discovered (count), how recently it
//! was last matched (last matched date) and a calculated complexity score."

use crate::sha1::pattern_id;
use minisql::{Database, SqlValue};
use sequence_core::analyzer::DiscoveredPattern;
use sequence_core::{Pattern, PatternSet};
use std::collections::HashMap;
use std::path::Path;

/// Errors from the pattern store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying database error.
    Db(minisql::Error),
    /// A stored pattern string no longer parses (e.g. the documented `%`
    /// collision, see §IV "unknown tag error").
    BadPattern {
        /// The offending pattern id.
        id: String,
        /// Parse failure.
        err: sequence_core::PatternParseError,
    },
    /// A failure injected by the test fault hook (see
    /// [`PatternStore::set_fault_hook`]); never produced in production.
    Injected(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Db(e) => write!(f, "pattern store database error: {e}"),
            StoreError::BadPattern { id, err } => {
                write!(f, "stored pattern {id} no longer parses: {err}")
            }
            StoreError::Injected(op) => write!(f, "injected fault in store operation {op}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<minisql::Error> for StoreError {
    fn from(e: minisql::Error) -> Self {
        StoreError::Db(e)
    }
}

/// A pattern row with its statistics and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPattern {
    /// SHA1(pattern ‖ service).
    pub id: String,
    /// Originating service.
    pub service: String,
    /// The pattern's textual form.
    pub pattern_text: String,
    /// Match count since discovery.
    pub count: u64,
    /// Unix timestamp of first discovery.
    pub first_seen: u64,
    /// Unix timestamp of the most recent match.
    pub last_matched: u64,
    /// The pattern's complexity score (variable fraction; 1.0 = worst).
    pub complexity: f64,
    /// Up to three unique example messages.
    pub examples: Vec<String>,
    /// Whether an administrator review promoted this pattern to production
    /// (see [`crate::review`]).
    pub promoted: bool,
}

impl StoredPattern {
    /// Parse the stored pattern text back into a [`Pattern`].
    pub fn pattern(&self) -> Result<Pattern, StoreError> {
        Pattern::parse(&self.pattern_text).map_err(|err| StoreError::BadPattern {
            id: self.id.clone(),
            err,
        })
    }
}

/// The fault-hook shape: called with the operation name before each write
/// path; returning `true` injects [`StoreError::Injected`].
pub type FaultHook = std::sync::Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// The store: a thin typed layer over the [`minisql`] database.
pub struct PatternStore {
    db: Database,
    fault_hook: Option<FaultHook>,
    /// Set by [`PatternStore::begin`]; its elapsed time is recorded into the
    /// `patterndb_txn_seconds` histogram at commit (cleared on rollback).
    txn_started: Option<std::time::Instant>,
}

impl std::fmt::Debug for PatternStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternStore")
            .field("db", &self.db)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "…"))
            .finish()
    }
}

const SCHEMA: &[&str] = &[
    "CREATE TABLE IF NOT EXISTS patterns (
        id TEXT PRIMARY KEY,
        service TEXT NOT NULL,
        pattern TEXT NOT NULL,
        cnt INTEGER DEFAULT 0,
        first_seen INTEGER DEFAULT 0,
        last_matched INTEGER DEFAULT 0,
        complexity REAL DEFAULT 0.0,
        promoted INTEGER DEFAULT 0
    )",
    "CREATE TABLE IF NOT EXISTS examples (
        pattern_id TEXT NOT NULL,
        seq INTEGER NOT NULL,
        body TEXT NOT NULL
    )",
];

impl PatternStore {
    /// A volatile in-memory store.
    pub fn in_memory() -> PatternStore {
        let mut db = Database::in_memory();
        for stmt in SCHEMA {
            db.execute(stmt).expect("schema DDL is valid");
        }
        PatternStore {
            db,
            fault_hook: None,
            txn_started: None,
        }
    }

    /// Open (or create) a persistent store rooted at the directory `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<PatternStore, StoreError> {
        let mut db = Database::open(path)?;
        for stmt in SCHEMA {
            db.execute(stmt)?;
        }
        Ok(PatternStore {
            db,
            fault_hook: None,
            txn_started: None,
        })
    }

    /// Install (or clear) a fault-injection hook for tests. The hook runs
    /// before each write-path operation with its name (`"begin"`,
    /// `"commit"`, `"upsert"`, `"record_matches"`, `"checkpoint"`);
    /// returning `true` makes that call fail with [`StoreError::Injected`]
    /// instead of touching the database. Read paths are never hooked, so an
    /// injected store stays inspectable.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// Whether the fault hook asks operation `op` to fail.
    fn fault_fires(&self, op: &str) -> bool {
        self.fault_hook.as_ref().is_some_and(|h| h(op))
    }

    /// Checkpoint the underlying database (compact snapshot + truncate WAL).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        if self.fault_fires("checkpoint") {
            return Err(StoreError::Injected("checkpoint"));
        }
        let _span = obs::span!("patterndb.checkpoint");
        self.db.checkpoint()?;
        Ok(())
    }

    /// Open a transaction spanning a whole batch's worth of updates, so a
    /// crash mid-batch never leaves half the batch's statistics behind.
    pub fn begin(&mut self) -> Result<(), StoreError> {
        if self.fault_fires("begin") {
            return Err(StoreError::Injected("begin"));
        }
        self.db.execute("BEGIN")?;
        self.txn_started = Some(std::time::Instant::now());
        Ok(())
    }

    /// Commit the open batch transaction. On failure the transaction is
    /// torn down (rolled back), so the store stays usable for a retry.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.fault_fires("commit") {
            self.txn_started = None;
            if self.db.in_transaction() {
                let _ = self.db.execute("ROLLBACK");
            }
            return Err(StoreError::Injected("commit"));
        }
        self.db.execute("COMMIT")?;
        if let Some(started) = self.txn_started.take() {
            obs::histogram!(
                "patterndb_txn_seconds",
                "Pattern store transaction time, begin to commit"
            )
            .record(started.elapsed());
        }
        Ok(())
    }

    /// Abandon the open batch transaction.
    pub fn rollback(&mut self) -> Result<(), StoreError> {
        self.txn_started = None;
        self.db.execute("ROLLBACK")?;
        Ok(())
    }

    /// Record a pattern discovered by an analysis run. Returns the pattern's
    /// reproducible id and whether a new row was created. If the pattern is
    /// already known for this service only its statistics are updated (the
    /// first discovery already stored up to three unique examples);
    /// otherwise a new row plus its examples are inserted.
    pub fn upsert_discovered(
        &mut self,
        service: &str,
        discovered: &DiscoveredPattern,
        now: u64,
    ) -> Result<(String, bool), StoreError> {
        if self.fault_fires("upsert") {
            return Err(StoreError::Injected("upsert"));
        }
        let text = discovered.pattern.render();
        let id = pattern_id(&text, service);
        let existing = self.db.query_with(
            "SELECT cnt FROM patterns WHERE id = ?",
            &[id.as_str().into()],
        )?;
        if existing.is_empty() {
            self.db.execute_with(
                "INSERT INTO patterns (id, service, pattern, cnt, first_seen, last_matched, complexity)
                 VALUES (?, ?, ?, ?, ?, ?, ?)",
                &[
                    id.as_str().into(),
                    service.into(),
                    text.as_str().into(),
                    (discovered.match_count as i64).into(),
                    (now as i64).into(),
                    (now as i64).into(),
                    discovered.pattern.complexity_score().into(),
                ],
            )?;
            // Freshly inserted: no examples can exist yet, insert directly.
            for (seq, ex) in discovered.examples.iter().take(3).enumerate() {
                self.db.execute_with(
                    "INSERT INTO examples (pattern_id, seq, body) VALUES (?, ?, ?)",
                    &[id.as_str().into(), (seq as i64).into(), ex.as_str().into()],
                )?;
            }
            Ok((id, true))
        } else {
            self.db.execute_with(
                "UPDATE patterns SET cnt = cnt + ?, last_matched = ? WHERE id = ?",
                &[
                    (discovered.match_count as i64).into(),
                    (now as i64).into(),
                    id.as_str().into(),
                ],
            )?;
            Ok((id, false))
        }
    }

    /// Add an example for a pattern, keeping at most three unique bodies.
    pub fn add_example(&mut self, id: &str, body: &str) -> Result<(), StoreError> {
        let existing = self.db.query_with(
            "SELECT body FROM examples WHERE pattern_id = ? ORDER BY seq",
            &[id.into()],
        )?;
        if existing.len() >= 3 || existing.iter().any(|r| r[0].as_text() == Some(body)) {
            return Ok(());
        }
        self.db.execute_with(
            "INSERT INTO examples (pattern_id, seq, body) VALUES (?, ?, ?)",
            &[id.into(), (existing.len() as i64).into(), body.into()],
        )?;
        Ok(())
    }

    /// Bump the match statistics of a pattern after the parser matched `n`
    /// messages against it.
    pub fn record_matches(&mut self, id: &str, n: u64, now: u64) -> Result<(), StoreError> {
        if self.fault_fires("record_matches") {
            return Err(StoreError::Injected("record_matches"));
        }
        self.db.execute_with(
            "UPDATE patterns SET cnt = cnt + ?, last_matched = ? WHERE id = ?",
            &[(n as i64).into(), (now as i64).into(), id.into()],
        )?;
        Ok(())
    }

    /// Bulk variant of [`PatternStore::record_matches`] for hot loops: all
    /// updates run inside one transaction, so a flush of N matched patterns
    /// costs one WAL commit instead of N. Must not be called while another
    /// transaction is open (it manages its own).
    pub fn record_matches_bulk(
        &mut self,
        counts: &[(String, u64)],
        now: u64,
    ) -> Result<(), StoreError> {
        if counts.is_empty() {
            return Ok(());
        }
        self.begin()?;
        for (id, n) in counts {
            if let Err(e) = self.record_matches(id, *n, now) {
                self.rollback()?;
                return Err(e);
            }
        }
        self.commit()
    }

    /// All stored patterns (optionally restricted to one service), weakest
    /// first by count — convenient for review.
    pub fn patterns(&mut self, service: Option<&str>) -> Result<Vec<StoredPattern>, StoreError> {
        let rows = match service {
            Some(s) => self.db.query_with(
                "SELECT id, service, pattern, cnt, first_seen, last_matched, complexity, promoted
                 FROM patterns WHERE service = ? ORDER BY cnt DESC, id",
                &[s.into()],
            )?,
            None => self.db.query(
                "SELECT id, service, pattern, cnt, first_seen, last_matched, complexity, promoted
                 FROM patterns ORDER BY service, cnt DESC, id",
            )?,
        };
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let id = r[0].as_text().unwrap_or_default().to_string();
            let examples = self
                .db
                .query_with(
                    "SELECT body FROM examples WHERE pattern_id = ? ORDER BY seq",
                    &[id.as_str().into()],
                )?
                .into_iter()
                .map(|er| er[0].as_text().unwrap_or_default().to_string())
                .collect();
            out.push(StoredPattern {
                id,
                service: r[1].as_text().unwrap_or_default().to_string(),
                pattern_text: r[2].as_text().unwrap_or_default().to_string(),
                count: r[3].as_integer().unwrap_or(0) as u64,
                first_seen: r[4].as_integer().unwrap_or(0) as u64,
                last_matched: r[5].as_integer().unwrap_or(0) as u64,
                complexity: r[6].as_real().unwrap_or(0.0),
                examples,
                promoted: r[7].as_integer().unwrap_or(0) != 0,
            });
        }
        Ok(out)
    }

    /// Load every stored pattern into per-service [`PatternSet`]s for the
    /// parser. Patterns that no longer parse (the documented `%`-collision
    /// limitation) are skipped and reported.
    pub fn load_pattern_sets(
        &mut self,
    ) -> Result<(HashMap<String, PatternSet>, Vec<StoreError>), StoreError> {
        let mut sets: HashMap<String, PatternSet> = HashMap::new();
        let mut errors = Vec::new();
        for sp in self.patterns(None)? {
            match sp.pattern() {
                Ok(p) => sets
                    .entry(sp.service.clone())
                    .or_default()
                    .insert(sp.id.clone(), p),
                Err(e) => errors.push(e),
            }
        }
        Ok((sets, errors))
    }

    /// Flag a pattern as promoted to production.
    pub fn promote(&mut self, id: &str) -> Result<(), StoreError> {
        self.db.execute_with(
            "UPDATE patterns SET promoted = 1 WHERE id = ?",
            &[id.into()],
        )?;
        Ok(())
    }

    /// Discard a pattern outright (the losing side of a multi-match
    /// conflict, or an administrator rejection), removing its examples too.
    pub fn discard(&mut self, id: &str) -> Result<(), StoreError> {
        self.db
            .execute_with("DELETE FROM examples WHERE pattern_id = ?", &[id.into()])?;
        self.db
            .execute_with("DELETE FROM patterns WHERE id = ?", &[id.into()])?;
        Ok(())
    }

    /// Delete patterns whose match count is below the save threshold. "Any
    /// pattern whose count of matches is less than the threshold is
    /// considered useless and thus not saved." Returns how many were removed.
    pub fn prune_below_threshold(&mut self, threshold: u64) -> Result<usize, StoreError> {
        let weak = self.db.query_with(
            "SELECT id FROM patterns WHERE cnt < ?",
            &[(threshold as i64).into()],
        )?;
        for r in &weak {
            self.db
                .execute_with("DELETE FROM examples WHERE pattern_id = ?", &[r[0].clone()])?;
        }
        let n = self
            .db
            .execute_with(
                "DELETE FROM patterns WHERE cnt < ?",
                &[(threshold as i64).into()],
            )?
            .affected();
        Ok(n)
    }

    /// Per-service pattern counts, most patterns first.
    pub fn service_summary(&mut self) -> Result<Vec<(String, u64, u64)>, StoreError> {
        let rows = self.db.query(
            "SELECT service, COUNT(*) AS n, SUM(cnt) FROM patterns GROUP BY service ORDER BY n DESC, service",
        )?;
        Ok(rows
            .into_iter()
            .map(|r| {
                (
                    r[0].as_text().unwrap_or_default().to_string(),
                    r[1].as_integer().unwrap_or(0) as u64,
                    r[2].as_integer().unwrap_or(0) as u64,
                )
            })
            .collect())
    }

    /// Total number of stored patterns.
    pub fn pattern_count(&mut self) -> Result<u64, StoreError> {
        let rows = self.db.query("SELECT COUNT(*) FROM patterns")?;
        Ok(rows[0][0].as_integer().unwrap_or(0) as u64)
    }

    /// Direct access to the underlying database (for ad-hoc administrator
    /// queries, mirroring how operators inspect the production store).
    pub fn db(&mut self) -> &mut Database {
        &mut self.db
    }
}

/// Convert [`SqlValue`] rows into displayable text (debug/CLI helper).
pub fn row_to_strings(row: &[SqlValue]) -> Vec<String> {
    row.iter().map(|v| v.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequence_core::{Analyzer, Scanner};

    fn discover(msgs: &[&str]) -> Vec<DiscoveredPattern> {
        let scanner = Scanner::new();
        let scanned: Vec<_> = msgs.iter().map(|m| scanner.scan(m)).collect();
        Analyzer::new().analyze(&scanned)
    }

    fn sshd_patterns() -> Vec<DiscoveredPattern> {
        discover(&[
            "Accepted password for root from 10.2.3.4 port 22 ssh2",
            "Accepted password for admin from 10.9.9.9 port 2200 ssh2",
            "Accepted password for guest from 172.16.0.5 port 22022 ssh2",
        ])
    }

    #[test]
    fn upsert_and_read_back() {
        let mut store = PatternStore::in_memory();
        let d = &sshd_patterns()[0];
        let (id, inserted) = store.upsert_discovered("sshd", d, 1000).unwrap();
        assert!(inserted);
        let all = store.patterns(Some("sshd")).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].id, id);
        assert_eq!(all[0].count, 3);
        assert_eq!(all[0].first_seen, 1000);
        assert_eq!(all[0].examples.len(), 3);
        assert!(all[0].complexity > 0.0 && all[0].complexity < 1.0);
        assert_eq!(all[0].pattern().unwrap(), d.pattern);
    }

    #[test]
    fn upsert_twice_accumulates() {
        let mut store = PatternStore::in_memory();
        let d = &sshd_patterns()[0];
        let (id1, ins1) = store.upsert_discovered("sshd", d, 1000).unwrap();
        let (id2, ins2) = store.upsert_discovered("sshd", d, 2000).unwrap();
        assert_eq!(id1, id2);
        assert!(ins1 && !ins2);
        let all = store.patterns(None).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].count, 6);
        assert_eq!(all[0].first_seen, 1000);
        assert_eq!(all[0].last_matched, 2000);
        // Examples stay capped at three and unique.
        assert_eq!(all[0].examples.len(), 3);
    }

    #[test]
    fn same_pattern_different_service_distinct_rows() {
        let mut store = PatternStore::in_memory();
        let d = &sshd_patterns()[0];
        let (a, _) = store.upsert_discovered("sshd", d, 1).unwrap();
        let (b, _) = store.upsert_discovered("sshd-internal", d, 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.pattern_count().unwrap(), 2);
    }

    #[test]
    fn record_matches_updates_stats() {
        let mut store = PatternStore::in_memory();
        let (id, _) = store
            .upsert_discovered("sshd", &sshd_patterns()[0], 100)
            .unwrap();
        store.record_matches(&id, 50, 999).unwrap();
        let p = &store.patterns(None).unwrap()[0];
        assert_eq!(p.count, 53);
        assert_eq!(p.last_matched, 999);
    }

    #[test]
    fn record_matches_bulk_updates_every_row_in_one_transaction() {
        let mut store = PatternStore::in_memory();
        let ds = discover(&["alpha one", "beta two", "gamma three"]);
        let mut ids = Vec::new();
        for d in &ds {
            ids.push(store.upsert_discovered("svc", d, 10).unwrap().0);
        }
        let counts: Vec<(String, u64)> = ids.iter().map(|id| (id.clone(), 7u64)).collect();
        store.record_matches_bulk(&counts, 99).unwrap();
        for p in store.patterns(Some("svc")).unwrap() {
            assert_eq!(p.count, 1 + 7);
            assert_eq!(p.last_matched, 99);
        }
        // Empty input is a no-op (and must not open a stray transaction).
        store.record_matches_bulk(&[], 100).unwrap();
        store.begin().unwrap();
        store.commit().unwrap();
    }

    #[test]
    fn fault_hook_injects_and_failed_commit_leaves_store_usable() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut store = PatternStore::in_memory();
        let (id, _) = store
            .upsert_discovered("sshd", &sshd_patterns()[0], 1)
            .unwrap();
        let failing = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&failing);
        store.set_fault_hook(Some(Arc::new(move |op: &str| {
            op == "commit" && flag.load(Ordering::Relaxed)
        })));
        let counts = vec![(id.clone(), 5u64)];
        match store.record_matches_bulk(&counts, 9) {
            Err(StoreError::Injected("commit")) => {}
            other => panic!("expected injected commit failure, got {other:?}"),
        }
        // The failed commit rolled back: statistics unchanged, and the
        // transaction is closed so a retry can succeed.
        assert_eq!(store.patterns(None).unwrap()[0].count, 3);
        failing.store(false, Ordering::Relaxed);
        store.record_matches_bulk(&counts, 9).unwrap();
        assert_eq!(store.patterns(None).unwrap()[0].count, 8);
    }

    #[test]
    fn load_pattern_sets_matches_messages() {
        let mut store = PatternStore::in_memory();
        store
            .upsert_discovered("sshd", &sshd_patterns()[0], 1)
            .unwrap();
        let (sets, errors) = store.load_pattern_sets().unwrap();
        assert!(errors.is_empty());
        let set = &sets["sshd"];
        let msg = Scanner::new().scan("Accepted password for eve from 203.0.113.9 port 4022 ssh2");
        assert!(set.match_message(&msg).is_some());
    }

    #[test]
    fn prune_below_threshold() {
        let mut store = PatternStore::in_memory();
        store
            .upsert_discovered("svc", &discover(&["rare event only once"])[0], 1)
            .unwrap();
        store
            .upsert_discovered("sshd", &sshd_patterns()[0], 1)
            .unwrap();
        let removed = store.prune_below_threshold(2).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(store.pattern_count().unwrap(), 1);
        // The weak pattern's examples are gone too.
        let rows = store.db().query("SELECT COUNT(*) FROM examples").unwrap();
        assert_eq!(rows[0][0].as_integer().unwrap(), 3);
    }

    #[test]
    fn service_summary_orders_by_pattern_count() {
        let mut store = PatternStore::in_memory();
        store
            .upsert_discovered("sshd", &sshd_patterns()[0], 1)
            .unwrap();
        for d in &discover(&["a b", "c d e", "f g h i"]) {
            store.upsert_discovered("noisy", d, 1).unwrap();
        }
        let summary = store.service_summary().unwrap();
        assert_eq!(summary[0].0, "noisy");
        assert_eq!(summary[0].1, 3);
        assert_eq!(summary[1], ("sshd".to_string(), 1, 3));
    }

    #[test]
    fn persistence_round_trip() {
        let dir = std::env::temp_dir().join(format!("patterndb-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let id = {
            let mut store = PatternStore::open(&dir).unwrap();
            let (id, _) = store
                .upsert_discovered("sshd", &sshd_patterns()[0], 42)
                .unwrap();
            store.checkpoint().unwrap();
            id
        };
        {
            let mut store = PatternStore::open(&dir).unwrap();
            let all = store.patterns(None).unwrap();
            assert_eq!(all.len(), 1);
            assert_eq!(all[0].id, id);
            assert_eq!(all[0].examples.len(), 3);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiline_examples_survive_persistence() {
        let dir = std::env::temp_dir().join(format!("patterndb-ml-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = PatternStore::open(&dir).unwrap();
            let d = discover(&[
                "panic: oh no\n  at frame 1",
                "panic: oh dear\n  at frame 9",
                "panic: oh my\nstack",
            ]);
            store.upsert_discovered("app", &d[0], 1).unwrap();
        }
        {
            let mut store = PatternStore::open(&dir).unwrap();
            let all = store.patterns(None).unwrap();
            assert!(all[0].examples.iter().any(|e| e.contains('\n')));
            assert!(all[0].pattern().unwrap().has_ignore_rest());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
