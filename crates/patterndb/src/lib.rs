//! # patterndb
//!
//! The persistent pattern database of the Sequence-RTG reproduction
//! (limitation 2 of the paper: "to run a continuous analysis in production,
//! Sequence-RTG needs to collate the output of each execution into a summary
//! database").
//!
//! * [`store`] — patterns in a SQL database (the in-repo [`minisql`] engine),
//!   one-to-many with their services, with up to three unique examples each
//!   and per-pattern statistics: match count, last-matched date, and a
//!   complexity score.
//! * [`sha1`] — reproducible pattern ids: `SHA1(pattern ‖ service)`.
//! * [`export`] — `ExportPatterns` to syslog-ng patterndb XML (Fig. 3), YAML,
//!   and Logstash Grok (Fig. 4).
//!
//! ```
//! use patterndb::{PatternStore, export::{export_patterns, ExportFormat, ExportSelection}};
//! use sequence_core::{Analyzer, Scanner};
//!
//! let scanner = Scanner::new();
//! let batch: Vec<_> = [
//!     "Accepted password for root from 10.2.3.4 port 22 ssh2",
//!     "Accepted password for admin from 10.9.9.9 port 2200 ssh2",
//!     "Accepted password for guest from 172.16.0.5 port 22022 ssh2",
//! ].iter().map(|m| scanner.scan(m)).collect();
//!
//! let mut store = PatternStore::in_memory();
//! for d in Analyzer::new().analyze(&batch) {
//!     store.upsert_discovered("sshd", &d, 1_630_000_000).unwrap();
//! }
//! let grok = export_patterns(&mut store, ExportFormat::Grok, ExportSelection::default()).unwrap();
//! assert!(grok.contains("%{IP:srcip}"));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod review;
pub mod sha1;
pub mod store;

pub use review::{find_conflicts, resolve_conflict, Conflict, ReviewItem, ReviewQueue};
pub use sha1::{pattern_id, sha1_hex};
pub use store::{PatternStore, StoreError, StoredPattern};
