//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! Sequence-RTG labels "each pattern with a unique ID [...] It is critical
//! that this ID is not only unique but reproducible for each pattern and
//! service. To achieve this, we compute a SHA1 hash of the concatenated text
//! of the pattern and the service." SHA-1 is used here exactly as the paper
//! uses it — as a stable content fingerprint, not for security.

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Pre-processing: append 0x80, pad with zeros, append 64-bit bit length.
    let ml = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-1 as a lower-case hex string (the pattern-id format).
pub fn sha1_hex(data: &[u8]) -> String {
    let digest = sha1(data);
    let mut s = String::with_capacity(40);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// The reproducible pattern id: `SHA1(pattern_text ‖ service)`.
pub fn pattern_id(pattern_text: &str, service: &str) -> String {
    let mut buf = Vec::with_capacity(pattern_text.len() + service.len());
    buf.extend_from_slice(pattern_text.as_bytes());
    buf.extend_from_slice(service.as_bytes());
    sha1_hex(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test vectors from FIPS 180-1 / RFC 3174.
    #[test]
    fn empty_string() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_two_block_message() {
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1_hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn exact_block_boundaries() {
        // 55, 56, 63, 64 and 65 byte inputs cross the padding edge cases.
        for len in [55usize, 56, 63, 64, 65] {
            let data = vec![b'x'; len];
            let d1 = sha1(&data);
            let d2 = sha1(&data);
            assert_eq!(d1, d2);
            assert_ne!(sha1(&data), sha1(&vec![b'y'; len]));
        }
    }

    #[test]
    fn pattern_id_is_reproducible_and_service_scoped() {
        let a = pattern_id("%action% from %srcip%", "sshd");
        let b = pattern_id("%action% from %srcip%", "sshd");
        let c = pattern_id("%action% from %srcip%", "nginx");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 40);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
    }
}
