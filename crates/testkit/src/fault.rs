//! Deterministic fault injection for I/O and storage tests.
//!
//! Crash-safety claims are only as good as the failures they were tested
//! against, and ad-hoc "return an error sometimes" mocks are neither
//! reproducible nor shrinkable. This module provides the missing layer:
//!
//! * [`FaultSchedule`] — a seeded xoshiro256\*\* decision stream. Every
//!   "should this operation fail?" question is answered by the schedule, so
//!   a failing property-test case is replayed exactly by its seed.
//! * [`FaultyStream`] — wraps any `Read`/`Write` and injects the failure
//!   modes real sockets exhibit: short reads and writes, `Interrupted`,
//!   `WouldBlock` (what a timed-out socket read returns on Unix), and
//!   connection resets.
//! * [`FailingStore`] — adapts a schedule into the plain
//!   `Arc<dyn Fn(&str) -> bool + Send + Sync>` hook shape that storage
//!   layers (e.g. `patterndb::PatternStore::set_fault_hook`) accept, so
//!   testkit stays dependency-free while still driving store failures.
//!
//! All three are `Send + Sync` and cheap to clone (via `Arc`), so one
//! schedule can drive faults across reader, writer, and store at once —
//! the decisions interleave deterministically in call order.

use crate::rng::Rng;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A deterministic stream of fail/pass decisions.
///
/// Decisions are drawn from a seeded PRNG guarded by a mutex, so concurrent
/// callers serialise into one reproducible sequence per seed (for strictly
/// reproducible *interleavings*, drive the schedule from one thread).
#[derive(Debug)]
pub struct FaultSchedule {
    rng: Mutex<Rng>,
    fail_probability: f64,
    /// Remaining faults this schedule may inject; `u64::MAX` = unlimited.
    budget: AtomicU64,
    injected: AtomicU64,
}

impl FaultSchedule {
    /// A schedule that fails each decision with `fail_probability`.
    pub fn new(seed: u64, fail_probability: f64) -> FaultSchedule {
        FaultSchedule {
            rng: Mutex::new(Rng::seed_from_u64(seed)),
            fail_probability: fail_probability.clamp(0.0, 1.0),
            budget: AtomicU64::new(u64::MAX),
            injected: AtomicU64::new(0),
        }
    }

    /// Cap the total number of injected faults; after `n`, every decision
    /// passes. Lets a test prove eventual success under transient failure.
    pub fn with_budget(self, n: u64) -> FaultSchedule {
        self.budget.store(n, Ordering::Relaxed);
        self
    }

    /// Decide one operation: `true` means inject a fault.
    pub fn should_fail(&self) -> bool {
        let roll = self
            .rng
            .lock()
            .expect("schedule rng")
            .gen_bool(self.fail_probability);
        if !roll {
            return false;
        }
        // Spend budget; on exhaustion the schedule goes permanently clean.
        let mut budget = self.budget.load(Ordering::Relaxed);
        loop {
            if budget == 0 {
                return false;
            }
            let next = if budget == u64::MAX {
                budget
            } else {
                budget - 1
            };
            match self.budget.compare_exchange_weak(
                budget,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => budget = seen,
            }
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A deterministic pick in `0..n` (fault-kind selection).
    pub fn roll(&self, n: u64) -> u64 {
        self.rng.lock().expect("schedule rng").bounded(n.max(1))
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// A `Read`/`Write` wrapper that injects socket-like failures according to a
/// [`FaultSchedule`].
///
/// Injected read faults: `Interrupted` (callers must retry), `WouldBlock`
/// (a timed-out socket read), `ConnectionReset`, and 1-byte short reads.
/// Injected write faults: `Interrupted`, `BrokenPipe`, and 1-byte short
/// writes. Short reads/writes are not errors — they exercise the callers'
/// re-assembly loops, which is where real protocol bugs live.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    schedule: Arc<FaultSchedule>,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner`, drawing decisions from `schedule`.
    pub fn new(inner: S, schedule: Arc<FaultSchedule>) -> FaultyStream<S> {
        FaultyStream { inner, schedule }
    }

    /// The wrapped stream (e.g. to inspect written bytes).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Borrow the wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if !buf.is_empty() && self.schedule.should_fail() {
            return match self.schedule.roll(4) {
                0 => Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected interrupt",
                )),
                1 => Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "injected read timeout",
                )),
                2 => Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected reset",
                )),
                _ => self.inner.read(&mut buf[..1]), // short read
            };
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !buf.is_empty() && self.schedule.should_fail() {
            return match self.schedule.roll(3) {
                0 => Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected interrupt",
                )),
                1 => Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected broken pipe",
                )),
                _ => self.inner.write(&buf[..1]), // short write
            };
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.schedule.should_fail() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected flush failure",
            ));
        }
        self.inner.flush()
    }
}

/// Adapts a [`FaultSchedule`] into the plain closure hook shape storage
/// layers accept, optionally restricted to a set of operation names.
#[derive(Debug)]
pub struct FailingStore {
    schedule: Arc<FaultSchedule>,
    only: Option<Vec<String>>,
}

impl FailingStore {
    /// Fail any hooked operation according to `schedule`.
    pub fn new(schedule: Arc<FaultSchedule>) -> FailingStore {
        FailingStore {
            schedule,
            only: None,
        }
    }

    /// Fail only the named operations; others always pass (and do not
    /// consume schedule decisions, keeping seeds comparable across tests).
    pub fn targeting(schedule: Arc<FaultSchedule>, ops: &[&str]) -> FailingStore {
        FailingStore {
            schedule,
            only: Some(ops.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// The closure to hand to a store's fault hook: called with the
    /// operation name, returns `true` to inject a failure.
    pub fn hook(&self) -> Arc<dyn Fn(&str) -> bool + Send + Sync> {
        let schedule = Arc::clone(&self.schedule);
        let only = self.only.clone();
        Arc::new(move |op: &str| {
            if let Some(only) = &only {
                if !only.iter().any(|o| o == op) {
                    return false;
                }
            }
            schedule.should_fail()
        })
    }

    /// How many faults the underlying schedule has injected.
    pub fn injected(&self) -> u64 {
        self.schedule.injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Cursor};

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = FaultSchedule::new(7, 0.5);
        let b = FaultSchedule::new(7, 0.5);
        let seq_a: Vec<bool> = (0..64).map(|_| a.should_fail()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.should_fail()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.injected(), b.injected());
        let c = FaultSchedule::new(8, 0.5);
        let seq_c: Vec<bool> = (0..64).map(|_| c.should_fail()).collect();
        assert_ne!(seq_a, seq_c, "different seeds must differ");
    }

    #[test]
    fn budget_caps_injected_faults() {
        let s = FaultSchedule::new(3, 1.0).with_budget(5);
        let failures = (0..100).filter(|_| s.should_fail()).count();
        assert_eq!(failures, 5);
        assert_eq!(s.injected(), 5);
    }

    #[test]
    fn zero_probability_never_fails() {
        let s = FaultSchedule::new(3, 0.0);
        assert!((0..100).all(|_| !s.should_fail()));
    }

    /// A retry loop over a faulty reader still recovers the full payload
    /// when the fault budget is finite (transient failures only).
    #[test]
    fn faulty_stream_payload_survives_retries() {
        let payload = b"alpha\nbeta\ngamma\n".to_vec();
        let schedule = Arc::new(FaultSchedule::new(11, 0.4).with_budget(16));
        let mut reader = BufReader::new(FaultyStream::new(Cursor::new(payload.clone()), schedule));
        let mut lines = Vec::new();
        // One persistent buffer: read_line appends partial bytes before a
        // WouldBlock surfaces, so the retry must keep them and continue.
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => lines.push(std::mem::take(&mut line)),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue;
                }
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert_eq!(lines.concat(), String::from_utf8(payload).unwrap());
    }

    #[test]
    fn failing_store_targets_only_named_ops() {
        let schedule = Arc::new(FaultSchedule::new(5, 1.0));
        let store = FailingStore::targeting(schedule, &["commit"]);
        let hook = store.hook();
        assert!(!hook("begin"));
        assert!(hook("commit"));
        assert!(!hook("upsert"));
        assert_eq!(store.injected(), 1);
    }

    #[test]
    fn faulty_writer_short_writes_reassemble_via_write_all() {
        let schedule = Arc::new(FaultSchedule::new(21, 0.5).with_budget(8));
        let mut w = FaultyStream::new(Vec::new(), schedule);
        let payload = b"the quick brown fox jumps over the lazy dog";
        // write_all retries Interrupted and continues after short writes;
        // only hard faults (BrokenPipe) abort — retry those at this level.
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 64, "must terminate");
            let written = w.get_ref().len();
            match w.write_all(&payload[written..]) {
                Ok(()) => break,
                Err(e) if e.kind() == io::ErrorKind::BrokenPipe => continue,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(w.into_inner(), payload);
    }
}
