//! Criterion-free micro-benchmarking.
//!
//! A warm-up + calibrated-iteration timer behind a facade that mirrors the
//! slice of criterion's API the `bench` crate uses — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`](crate::criterion_group) and
//! [`criterion_main!`](crate::criterion_main) — so every benchmark keeps
//! its name and ID (`group/function/param`) and historical `BENCH_*.json`
//! trajectories stay comparable.
//!
//! Measurement model: one warm-up call calibrates an inner iteration count
//! so each sample spans ≥ ~2 ms (or a single call for slow benchmarks),
//! then `sample_size` samples are timed and summarised as min / mean /
//! median / p95 per-iteration time, plus derived throughput when the group
//! declares one.
//!
//! Environment knobs:
//!
//! * `TESTKIT_BENCH_SAMPLES=n` — override every group's sample count
//!   (e.g. `1` for a CI smoke run).
//! * `TESTKIT_BENCH_JSON=path` — write the machine-readable summary (one
//!   JSON object per line, stable `id` field) after all groups finish.
//!
//! Run via `cargo bench -p bench` exactly as before; a positional argument
//! substring-filters benchmark IDs (`cargo bench -p bench -- scanner`).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements (e.g. messages).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A `function/parameter` benchmark ID (criterion-compatible rendering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("analyze", 8000)` renders as `analyze/8000`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only ID (criterion compatibility): renders as the
    /// parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Full ID: `group/function/param`.
    pub id: String,
    /// Samples actually taken.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (the headline number).
    pub median_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// Declared per-iteration work, if any.
    pub throughput: Option<Throughput>,
}

impl BenchReport {
    /// Units of declared work per second, at the median.
    pub fn throughput_per_sec(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let units = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            units / (self.median_ns / 1e9)
        })
    }

    fn render(&self) -> String {
        let mut line = format!(
            "{:<52} median {:>12}  p95 {:>12}  (n={})",
            self.id,
            fmt_ns(self.median_ns),
            fmt_ns(self.p95_ns),
            self.samples
        );
        if let Some(per_sec) = self.throughput_per_sec() {
            match self.throughput {
                Some(Throughput::Bytes(_)) => {
                    line.push_str(&format!("  {:.2} MiB/s", per_sec / (1024.0 * 1024.0)));
                }
                Some(Throughput::Elements(_)) => {
                    line.push_str(&format!("  {:.0} elem/s", per_sec));
                }
                None => {}
            }
        }
        line
    }

    fn to_json(&self) -> String {
        let mut throughput = match self.throughput {
            Some(Throughput::Elements(n)) => format!(r#","elements":{n}"#),
            Some(Throughput::Bytes(n)) => format!(r#","bytes":{n}"#),
            None => String::new(),
        };
        if let Some(per_sec) = self.throughput_per_sec() {
            throughput.push_str(&format!(r#","per_sec":{per_sec:.1}"#));
        }
        format!(
            r#"{{"id":"{}","samples":{},"min_ns":{:.1},"mean_ns":{:.1},"median_ns":{:.1},"p95_ns":{:.1}{}}}"#,
            self.id,
            self.samples,
            self.min_ns,
            self.mean_ns,
            self.median_ns,
            self.p95_ns,
            throughput
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver (criterion facade).
pub struct Criterion {
    filter: Option<String>,
    samples_override: Option<usize>,
    reports: Vec<BenchReport>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            samples_override: None,
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    /// Build from `cargo bench` CLI arguments: flags are ignored, the first
    /// positional argument becomes an ID substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let samples_override = std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|n| n.max(1));
        Criterion {
            filter,
            samples_override,
            reports: Vec::new(),
        }
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// All reports collected so far.
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }

    /// Print the run summary and write `TESTKIT_BENCH_JSON` if requested.
    pub fn final_summary(&mut self) {
        println!("\n{} benchmark(s) measured", self.reports.len());
        if let Ok(path) = std::env::var("TESTKIT_BENCH_JSON") {
            match self.write_json(&path) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("TESTKIT_BENCH_JSON={path}: write failed: {e}"),
            }
        }
    }

    /// Write all collected reports as JSON lines to `path`. Benches call
    /// this after [`Criterion::final_summary`] to record their default
    /// trajectory file (e.g. `results/BENCH_parser.json`) when
    /// `TESTKIT_BENCH_JSON` did not already redirect the output.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        std::fs::write(path, out)
    }

    /// Whether `TESTKIT_BENCH_JSON` redirected this run's JSON output.
    pub fn json_redirected() -> bool {
        std::env::var_os("TESTKIT_BENCH_JSON").is_some()
    }
}

/// A group of related benchmarks sharing sample-size and throughput config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = self.criterion.samples_override.unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            samples,
            stats: None,
        };
        f(&mut bencher);
        let Some(mut report) = bencher.stats else {
            eprintln!("warning: benchmark {full_id} never called Bencher::iter");
            return self;
        };
        report.id = full_id;
        report.throughput = self.throughput;
        println!("{}", report.render());
        self.criterion.reports.push(report);
        self
    }

    /// Measure one benchmark with a borrowed input (criterion signature).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (parity with criterion; reporting is incremental).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: usize,
    stats: Option<BenchReport>,
}

impl Bencher {
    /// Time `f`: one warm-up/calibration call, then `samples` timed samples
    /// of an inner loop sized so each sample spans ≥ ~2 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed();
        let inner = Self::inner_iters(once);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / inner as f64);
        }
        self.record(per_iter_ns);
    }

    /// Time with caller-controlled measurement (criterion's `iter_custom`
    /// signature): `f(n)` performs `n` iterations and returns only the
    /// duration the caller chose to time. Use when an iteration includes
    /// work that must happen but must not be measured — e.g. draining a
    /// daemon's queues between waves while timing only the wire path.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let once = f(1); // warm-up + calibration
        let inner = Self::inner_iters(once);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let timed = f(inner);
            per_iter_ns.push(timed.as_nanos() as f64 / inner as f64);
        }
        self.record(per_iter_ns);
    }

    /// Inner-loop size so one sample spans ≥ ~2 ms.
    fn inner_iters(once: Duration) -> u64 {
        let target = Duration::from_millis(2);
        if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
        }
    }

    fn record(&mut self, mut per_iter_ns: Vec<f64>) {
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let n = per_iter_ns.len();
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        let p95 = per_iter_ns[((n as f64 * 0.95).ceil() as usize).min(n) - 1];
        self.stats = Some(BenchReport {
            id: String::new(),
            samples: n,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            median_ns: median,
            p95_ns: p95,
            throughput: None,
        });
    }
}

/// Criterion-compatible group declaration: defines `fn $name(&mut Criterion)`
/// running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Criterion-compatible entry point: defines `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("analyze", 8000).id, "analyze/8000");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_produces_sane_stats() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(5);
            g.throughput(Throughput::Elements(100));
            g.bench_function("spin", |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for i in 0..100u64 {
                        acc = acc.wrapping_add(black_box(i));
                    }
                    acc
                })
            });
            g.finish();
        }
        let r = &c.reports()[0];
        assert_eq!(r.id, "unit/spin");
        assert_eq!(r.samples, 5);
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        let per_sec = r.throughput_per_sec().unwrap();
        assert!(per_sec > 0.0);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
            samples_override: None,
            reports: vec![],
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("something_else", |b| {
                ran = true;
                b.iter(|| 1 + 1)
            });
            g.finish();
        }
        assert!(!ran, "filtered benchmark must not run");
        assert!(c.reports().is_empty());
    }

    #[test]
    fn json_lines_are_well_formed() {
        let r = BenchReport {
            id: "g/f/1".into(),
            samples: 3,
            min_ns: 1.0,
            mean_ns: 2.0,
            median_ns: 2.0,
            p95_ns: 3.0,
            throughput: Some(Throughput::Bytes(1024)),
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains(r#""id":"g/f/1""#), "{j}");
        assert!(j.contains(r#""bytes":1024"#), "{j}");
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let data = vec![1u64, 2, 3];
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
                b.iter(|| d.iter().sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.reports()[0].id, "g/sum/3");
    }
}
