//! # testkit
//!
//! The workspace's hermetic test toolkit. Everything the repo previously
//! pulled from crates.io for testing and benchmarking lives here, written
//! against `std` only, so `cargo build && cargo test` succeed with zero
//! network access (DESIGN.md, "Hermetic-build policy"):
//!
//! * [`rng`] — a deterministic, seedable xoshiro256\*\* PRNG (SplitMix64
//!   seeding) with the small surface the repo actually uses (`gen_range`,
//!   `gen_bool`, `shuffle`, `choose`, raw words). Replaces `rand`.
//! * [`prop`] — a minimal property-testing runner: seeded case generation,
//!   failure shrinking for integers, vectors and strings, and persisted
//!   regression seeds compatible with proptest's
//!   `proptest-regressions/*.txt` files. Replaces `proptest`.
//! * [`fault`] — deterministic fault injection: seeded [`fault::FaultSchedule`]
//!   decision streams, [`fault::FaultyStream`] `Read`/`Write` wrappers
//!   (short reads/writes, `Interrupted`, `WouldBlock`, resets), and the
//!   [`fault::FailingStore`] hook adapter for storage-layer failures.
//! * [`bench`] — a warm-up + calibrated-iteration timer with median/p95
//!   reporting behind a criterion-compatible facade (`Criterion`,
//!   `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!`),
//!   so the bench names/IDs of `crates/bench` stay stable. Replaces
//!   `criterion`.
//! * [`alloc`] — a counting `#[global_allocator]` wrapper so golden tests
//!   can pin "this hot path performs zero heap allocations" against real
//!   allocator traffic instead of code review.
//!
//! Determinism is the point: every generator is seeded, the default
//! property-test seed is fixed (override with `TESTKIT_PROP_SEED`), and the
//! synthetic corpora built on [`rng::Rng`] are reproducible byte for byte.

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod fault;
pub mod prop;
pub mod rng;

pub use rng::Rng;
