//! Minimal property-based testing.
//!
//! A deliberate subset of proptest, written against `std` only:
//!
//! * **Seeded case generation** — every case derives from a fixed base seed
//!   (`Config::seed`, overridable with the `TESTKIT_PROP_SEED` environment
//!   variable), so a failing run is reproducible by rerunning the test.
//! * **Shrinking** — when a case fails, the runner walks the strategy's
//!   [`Strategy::shrink`] candidates (integers bisect toward the range
//!   start, vectors drop elements and shrink members, strings drop and
//!   simplify characters) and reports the smallest failing value it found.
//! * **Persisted regression seeds** — [`Config::with_regressions`] points at
//!   a proptest-style `proptest-regressions/*.txt` file. Its `cc <hex>`
//!   lines are replayed *before* any fresh cases (the first 16 hex digits
//!   seed the case), and new failures print a ready-to-paste `cc` line.
//!   Set `TESTKIT_PERSIST_REGRESSIONS=1` to append it automatically.
//!
//! Properties are closures returning `Result<(), String>`; the
//! [`prop_assert!`](crate::prop_assert), [`prop_assert_eq!`](crate::prop_assert_eq)
//! and [`prop_assert_ne!`](crate::prop_assert_ne) macros early-return the
//! `Err`. Panics inside the property are caught and treated as failures, so
//! `unwrap()` in a property shrinks like an assertion.
//!
//! ```
//! use testkit::prop::{self, Config};
//! use testkit::prop_assert_eq;
//!
//! prop::check(&Config::cases(64), &prop::vec(prop::range(0u64..100), 0..8), |v| {
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     prop_assert_eq!(&w, v);
//!     Ok(())
//! });
//! ```

use crate::rng::{splitmix64, Rng, SampleRange};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of fresh cases to generate.
    pub cases: u32,
    /// Cap on total shrink-candidate evaluations after a failure.
    pub max_shrink_iters: u32,
    /// Base seed for case derivation. Fixed by default so hermetic runs are
    /// reproducible; override with `TESTKIT_PROP_SEED`.
    pub seed: u64,
    /// Optional proptest-compatible regression-seed file.
    pub regressions: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("TESTKIT_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FF_EE5E_ED01_D00D);
        Config {
            cases: 256,
            max_shrink_iters: 2048,
            seed,
            regressions: None,
        }
    }
}

impl Config {
    /// Default config with a custom case count.
    pub fn cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Attach a regression-seed file (proptest `cc` format).
    pub fn with_regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }
}

/// A value generator with optional shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Generate one value from the seeded generator.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose strictly-simpler variants of a failing value (may be empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map the generated value (shrinking does not propagate through the
    /// map; prefer mapping inside the property when shrinking matters).
    fn map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Run `property` against `cases` generated values, shrinking failures.
///
/// Panics (like `assert!`) with a report containing the original failing
/// value, the shrunk value, the error, and a regression `cc` line.
pub fn check<S: Strategy>(
    config: &Config,
    strategy: &S,
    property: impl Fn(&S::Value) -> Result<(), String>,
) {
    let run = |value: &S::Value| -> Result<(), String> {
        match catch_unwind(AssertUnwindSafe(|| property(value))) {
            Ok(r) => r,
            Err(payload) => Err(panic_message(payload)),
        }
    };

    // Replay persisted regression cases first, exactly like proptest.
    if let Some(path) = &config.regressions {
        for seed in read_regression_seeds(path) {
            run_one_case(config, strategy, &run, seed, true);
        }
    }
    for i in 0..config.cases {
        let mut state = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let case_seed = splitmix64(&mut state);
        run_one_case(config, strategy, &run, case_seed, false);
    }
}

fn run_one_case<S: Strategy>(
    config: &Config,
    strategy: &S,
    run: &impl Fn(&S::Value) -> Result<(), String>,
    case_seed: u64,
    from_regression: bool,
) {
    let mut rng = Rng::seed_from_u64(case_seed);
    let original = strategy.generate(&mut rng);
    let Err(first_error) = run(&original) else {
        return;
    };

    // Greedy shrink: take the first failing candidate, repeat.
    let mut current = original.clone();
    let mut error = first_error;
    let mut evals = 0u32;
    'shrinking: while evals < config.max_shrink_iters {
        for candidate in strategy.shrink(&current) {
            evals += 1;
            if let Err(e) = run(&candidate) {
                current = candidate;
                error = e;
                continue 'shrinking;
            }
            if evals >= config.max_shrink_iters {
                break 'shrinking;
            }
        }
        break;
    }

    let cc = cc_line(case_seed);
    if let Some(path) = &config.regressions {
        if !from_regression && std::env::var_os("TESTKIT_PERSIST_REGRESSIONS").is_some() {
            persist_regression(path, &cc, &current);
        }
    }
    panic!(
        "property failed{}\n  case seed: {case_seed:#018x}\n  original:  {original:?}\n  \
         shrunk:    {current:?}  ({evals} shrink evals)\n  error:     {error}\n  \
         regression line (proptest-regressions format): {cc}\n",
        if from_regression {
            " (persisted regression case)"
        } else {
            ""
        },
    )
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Format a case seed as a proptest-style `cc` entry: the first 16 hex
/// digits carry the seed, the rest pad to proptest's 64-digit width.
fn cc_line(case_seed: u64) -> String {
    format!("cc {case_seed:016x}{:0>48}", "")
}

/// Parse `cc <hex>` lines; the leading 16 hex digits are the case seed.
fn read_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest.chars().take(16).collect();
            u64::from_str_radix(&hex, 16).ok()
        })
        .collect()
}

fn persist_regression<V: Debug>(path: &Path, cc: &str, shrunk: &V) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = std::fs::read_to_string(path).unwrap_or_default();
    if !text.contains(cc) {
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&format!("{cc} # shrinks to {shrunk:?}\n"));
        let _ = std::fs::write(path, text);
    }
}

/// Early-return `Err` when a condition fails inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Early-return `Err` when two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!("assertion failed: {l:?} != {r:?}"));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!("{}: {l:?} != {r:?}", format!($($fmt)+)));
        }
    }};
}

/// Early-return `Err` when two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!("assertion failed: {l:?} == {r:?}"));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!("{}: {l:?} == {r:?}", format!($($fmt)+)));
        }
    }};
}

pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Integer conversions shrinking needs (bisection toward the range start).
pub trait Int: Copy + PartialOrd + Debug + 'static {
    /// Widen to `i128`.
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (values stay inside the strategy's range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Int for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[range.start, range.end)`, shrinking toward the
/// range start.
pub fn range<T>(r: Range<T>) -> IntRange<T>
where
    T: Int,
    Range<T>: SampleRange<T> + Clone,
{
    IntRange { r }
}

/// See [`range`].
#[derive(Debug, Clone)]
pub struct IntRange<T> {
    r: Range<T>,
}

impl<T> Strategy for IntRange<T>
where
    T: Int,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        rng.gen_range(self.r.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let lo = self.r.start.to_i128();
        let v = value.to_i128();
        if v <= lo {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mid = lo + (v - lo) / 2;
        if mid != lo && mid != v {
            out.push(mid);
        }
        if v - 1 != lo && v - 1 != mid {
            out.push(v - 1);
        }
        out.into_iter().map(T::from_i128).collect()
    }
}

/// Uniform float in `[range.start, range.end)`, shrinking toward the start.
pub fn f64_range(r: Range<f64>) -> F64Range {
    F64Range { r }
}

/// See [`f64_range`].
#[derive(Debug, Clone)]
pub struct F64Range {
    r: Range<f64>,
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.r.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = self.r.start;
        if *value <= lo {
            return Vec::new();
        }
        let mid = lo + (value - lo) / 2.0;
        if mid < *value {
            vec![lo, mid]
        } else {
            vec![lo]
        }
    }
}

/// `true`/`false`, shrinking `true → false`.
pub fn boolean() -> Boolean {
    Boolean
}

/// See [`boolean`].
#[derive(Debug, Clone, Copy)]
pub struct Boolean;

impl Strategy for Boolean {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Always the same value (proptest's `Just`).
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// A strategy from a closure. No shrinking — prefer structured strategies
/// when shrinking matters.
pub fn from_fn<T: Clone + Debug, F: Fn(&mut Rng) -> T>(f: F) -> FromFn<F> {
    FromFn { f }
}

/// See [`from_fn`].
pub struct FromFn<F> {
    f: F,
}

impl<T: Clone + Debug, F: Fn(&mut Rng) -> T> Strategy for FromFn<F> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(rng)
    }
}

/// See [`Strategy::map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Clone + Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies of one value type (proptest's
/// `prop_oneof!`). Shrinking unions every branch's candidates.
pub fn one_of<T: Clone + Debug>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of: no options");
    OneOf { options }
}

/// See [`one_of`].
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Clone + Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let mut out = Vec::new();
        for opt in &self.options {
            out.extend(opt.shrink(value));
            if out.len() >= 16 {
                break;
            }
        }
        out
    }
}

/// Vector of `element` values with a length drawn from `len`. Shrinks by
/// halving, dropping single elements, then shrinking members in place.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec: empty length range");
    VecStrategy { element, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        if value.len() > min {
            // Front half first (drastic), then each single-element drop.
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for (i, item) in value.iter().enumerate() {
            for cand in self.element.shrink(item) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
                if out.len() >= 64 {
                    return out;
                }
            }
        }
        out
    }
}

/// String of `len` characters from `charset`. Shrinks by dropping
/// characters and replacing characters with the first charset character.
pub fn string(charset: &str, len: Range<usize>) -> StringStrategy {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty(), "string: empty charset");
    assert!(len.start < len.end, "string: empty length range");
    StringStrategy { chars, len }
}

/// Printable-ASCII string (proptest's `"[ -~]{..}"`).
pub fn ascii_string(len: Range<usize>) -> StringStrategy {
    let charset: String = (b' '..=b'~').map(char::from).collect();
    string(&charset, len)
}

/// Identifier-ish lowercase word.
pub fn word(len: Range<usize>) -> StringStrategy {
    string("abcdefghijklmnopqrstuvwxyz", len)
}

/// See [`string`].
#[derive(Debug, Clone)]
pub struct StringStrategy {
    chars: Vec<char>,
    len: Range<usize>,
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| *rng.choose(&self.chars).expect("non-empty charset"))
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let cs: Vec<char> = value.chars().collect();
        let min = self.len.start;
        let simplest = self.chars[0];
        let mut out = Vec::new();
        if cs.len() > min {
            let half = (cs.len() / 2).max(min);
            if half < cs.len() {
                out.push(cs[..half].iter().collect());
            }
            for i in 0..cs.len() {
                let mut v = cs.clone();
                v.remove(i);
                out.push(v.into_iter().collect());
            }
        }
        for i in 0..cs.len() {
            if cs[i] != simplest {
                let mut v = cs.clone();
                v[i] = simplest;
                out.push(v.into_iter().collect());
                if out.len() >= 64 {
                    break;
                }
            }
        }
        out
    }
}

/// Unicode-heavy string: ASCII mixed with multi-byte and astral characters
/// (the repo's stand-in for proptest's `any::<String>()` / `"\\PC*"`).
pub fn unicode_string(len: Range<usize>) -> UnicodeString {
    assert!(len.start < len.end, "unicode_string: empty length range");
    UnicodeString { len }
}

/// See [`unicode_string`].
#[derive(Debug, Clone)]
pub struct UnicodeString {
    len: Range<usize>,
}

const UNICODE_SPICE: &[char] = &[
    'é', 'ß', 'λ', 'Ж', '中', '文', '🦀', '𝄞', '‰', '\u{200b}', '"', '\\', '\n', '\t', '\u{7f}',
    '\u{0}',
];

impl Strategy for UnicodeString {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    char::from(rng.gen_range(b' '..=b'~'))
                } else {
                    *rng.choose(UNICODE_SPICE).expect("non-empty")
                }
            })
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let cs: Vec<char> = value.chars().collect();
        let min = self.len.start;
        let mut out = Vec::new();
        if cs.len() > min {
            let half = (cs.len() / 2).max(min);
            if half < cs.len() {
                out.push(cs[..half].iter().collect());
            }
            for i in 0..cs.len() {
                let mut v = cs.clone();
                v.remove(i);
                out.push(v.into_iter().collect());
            }
        }
        for i in 0..cs.len() {
            if cs[i] != 'a' {
                let mut v = cs.clone();
                v[i] = 'a';
                out.push(v.into_iter().collect());
                if out.len() >= 64 {
                    break;
                }
            }
        }
        out
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone(), value.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b, value.2.clone())),
        );
        out.extend(
            self.2
                .shrink(&value.2)
                .into_iter()
                .map(|c| (value.0.clone(), value.1.clone(), c)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        match catch_unwind(f) {
            Ok(()) => panic!("expected the property to fail"),
            Err(p) => panic_message(p),
        }
    }

    #[test]
    fn passing_property_is_quiet() {
        check(&Config::cases(128), &range(0u64..1000), |v| {
            prop_assert!(*v < 1000);
            Ok(())
        });
    }

    #[test]
    fn int_failures_shrink_to_the_boundary() {
        let msg = failure_message(|| {
            check(&Config::cases(256), &range(0i64..10_000), |v| {
                prop_assert!(*v < 50, "too big: {v}");
                Ok(())
            });
        });
        assert!(
            msg.contains("shrunk:    50"),
            "minimal counterexample is 50: {msg}"
        );
    }

    #[test]
    fn vec_failures_shrink_to_minimal_witness() {
        let msg = failure_message(|| {
            check(&Config::cases(256), &vec(range(0u32..100), 0..20), |v| {
                prop_assert!(!v.contains(&77), "has 77: {v:?}");
                Ok(())
            });
        });
        // The minimal failing vector is exactly [77].
        assert!(msg.contains("shrunk:    [77]"), "{msg}");
    }

    #[test]
    fn string_failures_shrink() {
        let msg = failure_message(|| {
            check(&Config::cases(512), &string("abcz", 0..12), |s| {
                prop_assert!(!s.contains('z'), "has z: {s:?}");
                Ok(())
            });
        });
        assert!(msg.contains("shrunk:    \"z\""), "{msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let msg = failure_message(|| {
            check(&Config::cases(256), &range(0u64..1000), |v| {
                assert!(*v < 10, "plain assert, not prop_assert");
                Ok(())
            });
        });
        assert!(msg.contains("panic:"), "{msg}");
        assert!(msg.contains("shrunk:    10"), "{msg}");
    }

    #[test]
    fn deterministic_given_fixed_seed() {
        let cfg = Config {
            seed: 1234,
            ..Config::cases(64)
        };
        let collect = || {
            let out = std::cell::RefCell::new(Vec::new());
            check(&cfg, &range(0u64..1_000_000), |v| {
                out.borrow_mut().push(*v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn tuples_generate_and_shrink_componentwise() {
        let s = (range(0u32..10), boolean());
        let shrinks = s.shrink(&(5, true));
        assert!(shrinks.contains(&(0, true)));
        assert!(shrinks.contains(&(5, false)));
    }

    #[test]
    fn regression_seeds_round_trip_through_cc_format() {
        let dir = std::env::temp_dir().join("testkit-prop-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("regress.txt");
        let seed = 0xDEAD_BEEF_0BAD_F00Du64;
        std::fs::write(&path, format!("# comment\n{}\n", cc_line(seed))).unwrap();
        assert_eq!(read_regression_seeds(&path), vec![seed]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn regression_file_from_seed_repo_parses() {
        // The anomaly crate's pre-existing proptest file must stay readable.
        let line = "cc ba565b2443f3e21cfa813771602b690a8437009845f87a58e812775bda689bd1 # shrinks to seed = 705";
        let dir = std::env::temp_dir().join("testkit-prop-test2");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("lib.txt");
        std::fs::write(&path, line).unwrap();
        let seeds = read_regression_seeds(&path);
        assert_eq!(seeds, vec![0xba56_5b24_43f3_e21c]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn one_of_draws_from_every_branch() {
        let s = one_of(vec![
            Box::new(just("alpha".to_string())) as Box<dyn Strategy<Value = String>>,
            Box::new(just("beta".to_string())),
        ]);
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn map_transforms_generated_values() {
        let s = range(1u32..5).map(|n| "x".repeat(n as usize));
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.chars().all(|c| c == 'x'));
        }
    }
}
