//! A counting global allocator for zero-allocation golden tests.
//!
//! Hot-path claims like "the zero-copy parse performs no heap allocation"
//! rot silently: one innocent `to_string()` added three layers down and the
//! claim is false with every test still green. The only trustworthy pin is
//! to count real allocator calls. [`CountingAlloc`] wraps the system
//! allocator and counts every `alloc`/`realloc`; a test binary installs it
//! with `#[global_allocator]` and asserts on [`allocations`] deltas.
//!
//! The counter is process-global, so zero-allocation assertions belong in
//! a dedicated integration-test binary with a single `#[test]` — the
//! default multi-threaded test harness would otherwise bleed allocations
//! from unrelated tests into the window being measured.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: testkit::alloc::CountingAlloc = testkit::alloc::CountingAlloc;
//!
//! let (value, allocs) = testkit::alloc::measure(|| hot_path(input));
//! assert_eq!(allocs, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that forwards to the system allocator and counts every
/// allocation and reallocation (frees are not counted — a zero-alloc claim
/// is about acquiring memory, not releasing it).
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations since process start (0 unless [`CountingAlloc`] is
/// installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `f` and return its result together with the number of allocations
/// performed while it ran (process-wide — see the module docs for why the
/// caller must control concurrency).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let value = f();
    let after = allocations();
    (value, after - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Without installing the allocator the counter stays flat; `measure`
    // still reports a well-formed delta.
    #[test]
    fn measure_reports_a_delta() {
        let (value, allocs) = measure(|| 2 + 2);
        assert_eq!(value, 4);
        assert_eq!(allocs, 0);
    }
}
