//! Deterministic, seedable PRNG.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded by expanding a
//! single `u64` through SplitMix64 — the exact construction the xoshiro
//! authors recommend. It is *not* cryptographic; it is fast, has a 2^256−1
//! period, and — the property this workspace cares about — produces an
//! identical stream for an identical seed on every platform, so synthetic
//! corpora and property-test cases are reproducible byte for byte.
//!
//! The API mirrors the subset of `rand` the repo used (`gen_range` over
//! integer and float ranges, `gen_bool`, `shuffle`, `choose`), so migrating
//! call sites is a type swap, not a rewrite.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the seed expander (and a fine standalone PRNG).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed from a single `u64` (SplitMix64 expansion). The same seed
    /// always yields the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next `u32` (upper bits of the 64-bit word).
    #[inline]
    pub fn u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next `u16`.
    #[inline]
    pub fn u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's widening multiply.
    /// `bound` must be non-zero.
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value from an integer or float range
    /// (`gen_range(0..10)`, `gen_range(1..=6)`, `gen_range(0.0..1.0)`).
    ///
    /// Panics on an empty range, like `rand`.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Fork an independent generator (for per-worker / per-case streams):
    /// deterministic in the parent's state, decorrelated from it.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[start, end)`. Panics on an empty range.
    fn sample_half_open(rng: &mut Rng, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`. Panics on an empty range.
    fn sample_inclusive(rng: &mut Rng, start: Self, end: Self) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from. The single blanket impl
/// per range shape ties the output type to the range's element type, which
/// is what lets integer-literal inference work at call sites, as in `rand`.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut Rng, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u64;
                start.wrapping_add(rng.bounded(span) as $t)
            }
            #[inline]
            fn sample_inclusive(rng: &mut Rng, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.bounded(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut Rng, start: f64, end: f64) -> f64 {
        assert!(start < end, "gen_range: empty range");
        start + (end - start) * rng.f64()
    }
    #[inline]
    fn sample_inclusive(rng: &mut Rng, start: f64, end: f64) -> f64 {
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * rng.f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // Stream stability: freeze the first outputs for seed 0 so any
        // accidental algorithm change (which would silently reshuffle every
        // synthetic corpus) fails loudly.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_eq!(first[0], 11091344671253066420, "stream changed for seed 0");
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(0..=5u8);
            assert!(v <= 5);
            let v = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let f = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces seen: {seen:?}");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = Rng::seed_from_u64(3);
        let _ = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "p=0.3 got {hits}/100000");
        let mut rng = Rng::seed_from_u64(11);
        assert_eq!((0..1000).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(9).shuffle(&mut a);
        Rng::seed_from_u64(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            a, sorted,
            "a 100-element shuffle virtually never lands sorted"
        );
    }

    #[test]
    fn choose_handles_empty_and_uniformish() {
        let mut rng = Rng::seed_from_u64(5);
        assert!(rng.choose::<u8>(&[]).is_none());
        let pool = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[*rng.choose(&pool).unwrap() - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::seed_from_u64(1);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..4).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
