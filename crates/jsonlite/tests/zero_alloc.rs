//! Golden test: the borrow-mode fast path performs **zero** heap
//! allocations.
//!
//! This binary installs `testkit::alloc::CountingAlloc` as the global
//! allocator and must therefore contain exactly one `#[test]` — the
//! counter is process-wide, and parallel tests would bleed allocations
//! into each other's measurement windows.

use std::borrow::Cow;
use testkit::alloc;

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

#[test]
fn borrow_fast_path_allocates_nothing() {
    let plain = r#"{"service":"sshd","message":"Accepted password for root from 10.0.0.1 port 22","pid":4242,"tags":["auth","ssh"]}"#;
    let escaped = r#"{"service":"sshd","message":"line one\nline two"}"#;

    // Warm up: fault in any lazy statics / IO buffers outside the window.
    let _ = jsonlite::borrow::object_fields(plain, ["service", "message"]);
    let _ = jsonlite::borrow::object_fields(escaped, ["service", "message"]);

    // The zero-copy fast path: escape-free fields borrow from the input,
    // unrelated fields (numbers, arrays) are skipped without building
    // anything. Not one allocator call is allowed.
    let (result, allocs) = alloc::measure(|| {
        let mut checksum = 0usize;
        for _ in 0..100 {
            let [service, message] =
                jsonlite::borrow::object_fields(plain, ["service", "message"]).expect("valid line");
            let (service, message) = (service.unwrap(), message.unwrap());
            assert!(matches!(service, Cow::Borrowed(_)));
            assert!(matches!(message, Cow::Borrowed(_)));
            checksum += service.len() + message.len();
        }
        checksum
    });
    assert_eq!(
        result,
        100 * ("sshd".len() + "Accepted password for root from 10.0.0.1 port 22".len())
    );
    assert_eq!(allocs, 0, "zero-copy fast path must not allocate");

    // Control: the escape path MUST allocate (the unescaped text differs
    // from the raw bytes), proving the counter actually observes this code.
    let (_, allocs) = alloc::measure(|| {
        let [_, message] =
            jsonlite::borrow::object_fields(escaped, ["service", "message"]).expect("valid line");
        assert!(matches!(message.unwrap(), Cow::Owned(_)));
    });
    assert!(allocs > 0, "escape path must take the copy path");
}
