//! Borrow-mode JSON parsing: values that reference the input buffer.
//!
//! The owned parser in [`crate::parse`] allocates a `String` for every JSON
//! string and a `BTreeMap` for every object. On the daemon ingest hot path
//! that is pure overhead: a stream line is parsed once, two fields are
//! pulled out, and the rest is discarded. This module provides two
//! allocation-avoiding entry points:
//!
//! * [`parse`] — a full borrowed value tree. Strings are `Cow<'a, str>`:
//!   escape-free strings borrow straight from the input (`Cow::Borrowed`),
//!   strings containing escapes are unescaped into an owned copy
//!   (`Cow::Owned`). A borrow is therefore never *wrong* — the copy path is
//!   taken exactly when the raw bytes differ from the decoded text.
//! * [`object_fields`] — the ingest fast path. Extracts up to `N` named
//!   string fields from a top-level object without building any tree. On
//!   escape-free input it performs **zero heap allocations**: the returned
//!   fields are borrowed slices of the input (pinned by a golden test using
//!   the testkit allocation counter).
//!
//! Both entry points are drop-in equivalent to the owned parser: they
//! accept exactly the same documents and reject with the same
//! [`ParseError`] (same offset, same kind). Property tests in the crate
//! pin that equivalence case-by-case.

use crate::parse::{ErrorKind, ParseError};
use std::borrow::Cow;

/// Maximum nesting depth — must match the owned parser's limit so the two
/// front ends accept identical documents.
const MAX_DEPTH: usize = 128;

/// A JSON value borrowing from the parsed input where possible.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number (f64, like the owned parser).
    Number(f64),
    /// A string: borrowed when escape-free, owned when unescaping copied.
    String(Cow<'a, str>),
    /// An array of values.
    Array(Vec<Value<'a>>),
    /// An object as an ordered pair list; duplicate keys are kept in
    /// document order and [`Value::get`] resolves them last-wins, matching
    /// the owned parser's `BTreeMap::insert` semantics.
    Object(Vec<(Cow<'a, str>, Value<'a>)>),
}

impl<'a> Value<'a> {
    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// The object pair list if this is an object.
    pub fn as_object(&self) -> Option<&[(Cow<'a, str>, Value<'a>)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object field lookup, last occurrence wins (duplicate-key semantics
    /// of the owned parser).
    pub fn get(&self, key: &str) -> Option<&Value<'a>> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Convert into the owned [`crate::Value`] representation.
    pub fn into_owned(self) -> crate::Value {
        match self {
            Value::Null => crate::Value::Null,
            Value::Bool(b) => crate::Value::Bool(b),
            Value::Number(n) => crate::Value::Number(n),
            Value::String(s) => crate::Value::String(s.into_owned()),
            Value::Array(items) => {
                crate::Value::Array(items.into_iter().map(Value::into_owned).collect())
            }
            Value::Object(pairs) => crate::Value::Object(
                // In-order insertion reproduces last-wins on duplicates.
                pairs
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v.into_owned()))
                    .collect(),
            ),
        }
    }
}

/// Why [`object_fields`] could not extract from the input.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldsError {
    /// The input is not valid JSON (same error the owned parser reports).
    Json(ParseError),
    /// The input is valid JSON but the top-level value is not an object.
    NotAnObject,
}

/// Parse a complete JSON document into a borrowed value tree.
///
/// Accepts and rejects exactly like [`crate::parse`]; escape-free strings
/// borrow from `input`.
pub fn parse(input: &str) -> Result<Value<'_>, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err(ErrorKind::TrailingData));
    }
    Ok(v)
}

/// Extract up to `N` named string fields from a top-level JSON object
/// without building a value tree.
///
/// The whole document is validated (nesting depth, escapes, UTF-8,
/// trailing data) with the owned parser's exact error semantics. For each
/// requested key the *last* occurrence wins; a key that is missing, or
/// whose final value is not a string, yields `None`. Extra fields are
/// skipped without allocating. On escape-free input every returned field
/// is `Cow::Borrowed` and the call performs no heap allocation at all.
pub fn object_fields<'a, const N: usize>(
    input: &'a str,
    keys: [&str; N],
) -> Result<[Option<Cow<'a, str>>; N], FieldsError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    match p.peek() {
        None => return Err(FieldsError::Json(p.err(ErrorKind::UnexpectedEof))),
        Some(b'{') => {}
        Some(_) => {
            // Not an object at the top level. Classify exactly like the
            // owned path (`parse` then shape check): a document that fails
            // to parse is a JSON error; one that parses is NotAnObject.
            return match p.skip_value(0).and_then(|()| {
                p.skip_ws();
                if p.i != p.b.len() {
                    Err(p.err(ErrorKind::TrailingData))
                } else {
                    Ok(())
                }
            }) {
                Ok(()) => Err(FieldsError::NotAnObject),
                Err(e) => Err(FieldsError::Json(e)),
            };
        }
    }

    let mut out: [Option<Cow<'a, str>>; N] = std::array::from_fn(|_| None);
    p.i += 1; // consume '{'
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.i += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string_cow().map_err(FieldsError::Json)?;
            p.skip_ws();
            p.expect(b':').map_err(FieldsError::Json)?;
            p.skip_ws();
            let wanted = keys.iter().position(|k| key.as_ref() == *k);
            match wanted {
                Some(j) if p.peek() == Some(b'"') => {
                    out[j] = Some(p.string_cow().map_err(FieldsError::Json)?);
                }
                Some(j) => {
                    // Non-string value for a requested key: last wins, so
                    // it must *clear* any earlier string occurrence.
                    p.skip_value(1).map_err(FieldsError::Json)?;
                    out[j] = None;
                }
                None => p.skip_value(1).map_err(FieldsError::Json)?,
            }
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.i += 1,
                Some(b'}') => {
                    p.i += 1;
                    break;
                }
                Some(c) => {
                    return Err(FieldsError::Json(
                        p.err(ErrorKind::UnexpectedChar(c as char)),
                    ))
                }
                None => return Err(FieldsError::Json(p.err(ErrorKind::UnexpectedEof))),
            }
        }
    }
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(FieldsError::Json(p.err(ErrorKind::TrailingData)));
    }
    Ok(out)
}

/// The borrowed-mode parser core. Structurally identical to the owned
/// `Parser` in `parse.rs` — every offset bump and error site mirrors it so
/// the two report byte-identical `ParseError`s.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind) -> ParseError {
        ParseError {
            offset: self.i,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    /// View a plain run as `&str` without re-validating it.
    ///
    /// SAFETY: `self.b` comes from `input.as_bytes()` where `input: &str`,
    /// so the whole buffer is valid UTF-8. [`Parser::scan_plain_run`] stops
    /// only at the ASCII bytes `"`, `\`, or a control byte, and an ASCII
    /// byte can never be the interior of a multi-byte UTF-8 sequence — so
    /// every run boundary lands on a character boundary and the sub-slice
    /// is itself valid UTF-8. Re-validating here cost ~60 ns per ingest
    /// line; `debug_assert!` keeps the check in debug builds.
    fn run_str(&self, range: std::ops::Range<usize>) -> &'a str {
        let bytes = &self.b[range];
        debug_assert!(std::str::from_utf8(bytes).is_ok());
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Advance past a run of plain string bytes (anything but `"`, `\`, or
    /// a control character). One slice scan instead of a byte-at-a-time
    /// `peek` loop: the predicate is branch-free enough for the optimiser
    /// to unroll, and string payload is where almost every input byte
    /// lives, so this is the parser's hottest loop.
    fn scan_plain_run(&mut self) {
        let rest = &self.b[self.i..];
        let n = rest
            .iter()
            .position(|&c| c == b'"' || c == b'\\' || c < 0x20)
            .unwrap_or(rest.len());
        self.i += n;
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(x) if x == c => {
                self.i += 1;
                Ok(())
            }
            Some(x) => Err(self.err(ErrorKind::UnexpectedChar(x as char))),
            None => Err(self.err(ErrorKind::UnexpectedEof)),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value<'a>, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string_cow()?)),
            Some(b't') => self.keyword(b"true", Value::Bool(true)),
            Some(b'f') => self.keyword(b"false", Value::Bool(false)),
            Some(b'n') => self.keyword(b"null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => Ok(Value::Number(self.number()?)),
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c as char))),
        }
    }

    /// Validate one value without materialising anything. Same acceptance
    /// and errors as `value`, zero allocation.
    fn skip_value(&mut self, depth: usize) -> Result<(), ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'{') => self.skip_object(depth),
            Some(b'[') => self.skip_array(depth),
            Some(b'"') => self.skip_string(),
            Some(b't') => self.keyword(b"true", Value::Null).map(|_| ()),
            Some(b'f') => self.keyword(b"false", Value::Null).map(|_| ()),
            Some(b'n') => self.keyword(b"null", Value::Null).map(|_| ()),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number().map(|_| ()),
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn keyword(&mut self, word: &[u8], v: Value<'a>) -> Result<Value<'a>, ParseError> {
        if self.b.len() - self.i >= word.len() && &self.b[self.i..self.i + word.len()] == word {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(ErrorKind::UnexpectedChar(self.peek().unwrap_or(0) as char)))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value<'a>, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string_cow()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(pairs));
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_object(&mut self, depth: usize) -> Result<(), ParseError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.skip_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.skip_value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value<'a>, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_array(&mut self, depth: usize) -> Result<(), ParseError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.skip_value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    /// One string, borrowed when possible.
    ///
    /// The fast path scans a run of plain bytes; if the run reaches the
    /// closing quote the slice is borrowed directly (see [`Parser::run_str`]
    /// for why no UTF-8 re-validation is needed). The first escape (or a
    /// multi-run string) falls back to the owned accumulation loop of the
    /// owned parser, with matching error offsets.
    fn string_cow(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.expect(b'"')?;
        let start = self.i;
        self.scan_plain_run();
        let first_run = start..self.i;
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'"') => {
                let chunk = self.run_str(first_run);
                self.i += 1;
                Ok(Cow::Borrowed(chunk))
            }
            Some(b'\\') => {
                // Copy path: seed with the first run, then continue the
                // owned parser's run/escape loop.
                let mut out = String::new();
                out.push_str(self.run_str(first_run));
                self.i += 1;
                self.escape(&mut out)?;
                loop {
                    let run = self.i;
                    self.scan_plain_run();
                    if self.i > run {
                        out.push_str(self.run_str(run..self.i));
                    }
                    match self.peek() {
                        None => return Err(self.err(ErrorKind::UnexpectedEof)),
                        Some(b'"') => {
                            self.i += 1;
                            return Ok(Cow::Owned(out));
                        }
                        Some(b'\\') => {
                            self.i += 1;
                            self.escape(&mut out)?;
                        }
                        Some(_) => return Err(self.err(ErrorKind::ControlCharInString)),
                    }
                }
            }
            Some(_) => Err(self.err(ErrorKind::ControlCharInString)),
        }
    }

    /// Validate one string without materialising it. Zero allocation.
    fn skip_string(&mut self) -> Result<(), ParseError> {
        self.expect(b'"')?;
        loop {
            self.scan_plain_run();
            match self.peek() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    let mut sink = Discard;
                    self.escape(&mut sink)?;
                }
                Some(_) => return Err(self.err(ErrorKind::ControlCharInString)),
            }
        }
    }

    /// Decode one escape sequence (after the `\`) into `out`. Identical
    /// validation to the owned parser's `escape`.
    fn escape(&mut self, out: &mut impl PushChar) -> Result<(), ParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof))?;
        self.i += 1;
        match c {
            b'"' => out.push_char('"'),
            b'\\' => out.push_char('\\'),
            b'/' => out.push_char('/'),
            b'b' => out.push_char('\u{0008}'),
            b'f' => out.push_char('\u{000C}'),
            b'n' => out.push_char('\n'),
            b'r' => out.push_char('\r'),
            b't' => out.push_char('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    if self.peek() == Some(b'\\') && self.b.get(self.i + 1) == Some(&b'u') {
                        self.i += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err(ErrorKind::BadUnicodeEscape));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?
                    } else {
                        return Err(self.err(ErrorKind::BadUnicodeEscape));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(ErrorKind::BadUnicodeEscape));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?
                };
                out.push_char(ch);
            }
            _ => return Err(self.err(ErrorKind::BadEscape)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.b.len() - self.i < 4 {
            return Err(self.err(ErrorKind::UnexpectedEof));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.b[self.i];
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a' + 10) as u32,
                b'A'..=b'F' => (c - b'A' + 10) as u32,
                _ => return Err(self.err(ErrorKind::BadUnicodeEscape)),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while self.peek().map_or(false, |c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err(ErrorKind::BadNumber)),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !self.peek().map_or(false, |c| c.is_ascii_digit()) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while self.peek().map_or(false, |c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !self.peek().map_or(false, |c| c.is_ascii_digit()) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while self.peek().map_or(false, |c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map_err(|_| self.err(ErrorKind::BadNumber))
    }
}

/// Escape-decoding sink: `String` collects, `Discard` only validates.
trait PushChar {
    fn push_char(&mut self, c: char);
}

impl PushChar for String {
    fn push_char(&mut self, c: char) {
        self.push(c);
    }
}

struct Discard;

impl PushChar for Discard {
    fn push_char(&mut self, _c: char) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_free_strings_borrow() {
        let input = r#"{"service":"sshd","message":"Accepted password"}"#;
        let v = parse(input).unwrap();
        match v.get("message").unwrap() {
            Value::String(Cow::Borrowed(s)) => assert_eq!(*s, "Accepted password"),
            other => panic!("expected borrowed string, got {other:?}"),
        }
    }

    #[test]
    fn escapes_force_the_copy_path() {
        let v = parse(r#""a\nb""#).unwrap();
        match v {
            Value::String(Cow::Owned(s)) => assert_eq!(s, "a\nb"),
            other => panic!("expected owned string, got {other:?}"),
        }
    }

    #[test]
    fn borrowed_tree_matches_owned_tree() {
        let input = r#"{"a": [1, 2, {"b": [true, null]}], "c": {}, "s": "x\ty"}"#;
        assert_eq!(
            parse(input).unwrap().into_owned(),
            crate::parse(input).unwrap()
        );
    }

    #[test]
    fn errors_match_owned_parser() {
        for bad in [
            "not json",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":",
            "tru",
            "-",
            "01",
            "1.",
            "1e",
            "1 2",
            r#""\q""#,
            r#""\u12""#,
            r#""\ud800x""#,
            r#""\udc00""#,
            "\"a\u{01}b\"",
        ] {
            assert_eq!(
                parse(bad).map(Value::into_owned),
                crate::parse(bad),
                "mismatch on {bad:?}"
            );
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(parse(&deep).map(Value::into_owned), crate::parse(&deep));
    }

    #[test]
    fn object_fields_extracts_last_wins() {
        let [service, message] = object_fields(
            r#"{"service":"a","extra":[1,{"x":2}],"message":"m","service":"b"}"#,
            ["service", "message"],
        )
        .unwrap();
        assert_eq!(service.as_deref(), Some("b"));
        assert_eq!(message.as_deref(), Some("m"));
    }

    #[test]
    fn object_fields_non_string_last_occurrence_clears() {
        let [service] = object_fields(r#"{"service":"a","service":1}"#, ["service"]).unwrap();
        assert_eq!(service, None);
    }

    #[test]
    fn object_fields_rejects_non_objects_and_bad_json() {
        assert_eq!(
            object_fields("[1,2]", ["service"]),
            Err(FieldsError::NotAnObject)
        );
        assert!(matches!(
            object_fields("[1,2", ["service"]),
            Err(FieldsError::Json(_))
        ));
        assert!(matches!(
            object_fields(r#"{"a":1} trailing"#, ["a"]),
            Err(FieldsError::Json(ParseError {
                kind: ErrorKind::TrailingData,
                ..
            }))
        ));
    }

    #[test]
    fn object_fields_borrows_when_escape_free() {
        let input = r#"{"service":"sshd","message":"plain text"}"#;
        let [service, message] = object_fields(input, ["service", "message"]).unwrap();
        assert!(matches!(service, Some(Cow::Borrowed("sshd"))));
        assert!(matches!(message, Some(Cow::Borrowed("plain text"))));
        let escaped = r#"{"service":"sshd","message":"a\nb"}"#;
        let [_, message] = object_fields(escaped, ["service", "message"]).unwrap();
        assert!(matches!(message, Some(Cow::Owned(_))));
    }

    #[test]
    fn object_fields_escaped_key_still_matches() {
        // Key comparison happens after unescaping: "service" == "service".
        let [service] = object_fields("{\"serv\\u0069ce\":\"x\"}", ["service"]).unwrap();
        assert_eq!(service.as_deref(), Some("x"));
    }

    #[test]
    fn empty_object_yields_all_none() {
        let [a, b] = object_fields("{}", ["a", "b"]).unwrap();
        assert_eq!(a, None);
        assert_eq!(b, None);
    }
}
