//! The JSON value model.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve key order via `BTreeMap` (sorted); the Sequence-RTG
/// stream format only has two fields (`service`, `message`), so ordering is
/// irrelevant to consumers but determinism helps testing.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integers up to 2^53 round-trip.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `i64` if it is a number with an exact integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field access: `value.get("service")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self))
    }
}

/// Build a JSON object from `(key, value)` pairs.
pub fn object<K: Into<String>, V: Into<Value>>(pairs: impl IntoIterator<Item = (K, V)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = object([
            ("a", Value::from(1i64)),
            ("b", Value::from("x")),
            ("c", Value::Bool(true)),
        ]);
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("d").is_none());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn as_i64_rejects_fractions() {
        assert_eq!(Value::Number(1.5).as_i64(), None);
        assert_eq!(Value::Number(-3.0).as_i64(), Some(-3));
    }

    #[test]
    fn type_mismatches_return_none() {
        assert_eq!(Value::Null.as_str(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
        assert_eq!(Value::String("x".into()).as_array(), None);
        assert_eq!(Value::Array(vec![]).as_object(), None);
    }
}
