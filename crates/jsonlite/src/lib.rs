//! # jsonlite
//!
//! A small, dependency-free JSON parser and serialiser (RFC 8259).
//!
//! Sequence-RTG's data stream ingester expects "each item in the stream
//! [to be] using a JSON format with only two fields: `service` [...] and the
//! unaltered log `message`". This crate provides the JSON substrate for that
//! ingester (and for anything else in the workspace that needs structured
//! text), standing in for `serde_json`, which is outside the allowed offline
//! dependency set — see DESIGN.md §2.
//!
//! ```
//! let item = jsonlite::parse(r#"{"service":"sshd","message":"session opened"}"#).unwrap();
//! assert_eq!(item.get("service").unwrap().as_str(), Some("sshd"));
//! assert_eq!(jsonlite::parse(&jsonlite::to_string(&item)).unwrap(), item);
//! ```

#![warn(missing_docs)]

pub mod parse;
pub mod ser;
pub mod value;

pub use parse::{parse, ErrorKind, ParseError};
pub use ser::{to_string, to_string_pretty};
pub use value::{object, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            // Finite numbers only (JSON cannot express NaN/Inf).
            (-1.0e12f64..1.0e12).prop_map(Value::Number),
            any::<i32>().prop_map(|n| Value::Number(n as f64)),
            "[a-zA-Z0-9 _%/.:=\\-]{0,24}".prop_map(Value::String),
            // Strings with escapes and non-ASCII.
            any::<String>().prop_map(Value::String),
        ];
        leaf.prop_recursive(4, 32, 8, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        /// Serialise → parse is the identity for every finite value.
        #[test]
        fn round_trip(v in arb_value()) {
            let s = to_string(&v);
            let back = parse(&s).unwrap();
            prop_assert_eq!(back, v);
        }

        /// Pretty output parses back to the same value.
        #[test]
        fn pretty_round_trip(v in arb_value()) {
            let back = parse(&to_string_pretty(&v)).unwrap();
            prop_assert_eq!(back, v);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_total(s in any::<String>()) {
            let _ = parse(&s);
        }

        /// Parsing arbitrary bytes-as-string input either fails or yields a
        /// value that round-trips.
        #[test]
        fn parse_then_round_trip(s in "[ -~]{0,64}") {
            if let Ok(v) = parse(&s) {
                prop_assert_eq!(parse(&to_string(&v)).unwrap(), v);
            }
        }
    }
}
