//! # jsonlite
//!
//! A small, dependency-free JSON parser and serialiser (RFC 8259).
//!
//! Sequence-RTG's data stream ingester expects "each item in the stream
//! [to be] using a JSON format with only two fields: `service` [...] and the
//! unaltered log `message`". This crate provides the JSON substrate for that
//! ingester (and for anything else in the workspace that needs structured
//! text), standing in for `serde_json`, which is outside the allowed offline
//! dependency set — see DESIGN.md §2.
//!
//! ```
//! let item = jsonlite::parse(r#"{"service":"sshd","message":"session opened"}"#).unwrap();
//! assert_eq!(item.get("service").unwrap().as_str(), Some("sshd"));
//! assert_eq!(jsonlite::parse(&jsonlite::to_string(&item)).unwrap(), item);
//! ```

#![warn(missing_docs)]

pub mod borrow;
pub mod parse;
pub mod ser;
pub mod value;

pub use parse::{parse, ErrorKind, ParseError};
pub use ser::{to_string, to_string_pretty};
pub use value::{object, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use std::collections::BTreeMap;
    use testkit::prop::{self, Config, Strategy};
    use testkit::prop_assert_eq;
    use testkit::rng::Rng;

    /// Recursive JSON value strategy with structural shrinking: containers
    /// shrink toward fewer entries and then toward their children; leaves
    /// shrink toward `null`.
    struct ArbValue {
        depth: u32,
    }

    fn arb_value() -> ArbValue {
        ArbValue { depth: 4 }
    }

    const STRING_CHARS: &str = "abcXYZ09 _%/.:=-\\\"\u{e9}\u{4e2d}\n\t";

    fn gen_value(rng: &mut Rng, depth: u32) -> Value {
        let leaf_only = depth == 0;
        match rng.gen_range(0..if leaf_only { 6 } else { 8 }) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_bool(0.5)),
            // Finite numbers only (JSON cannot express NaN/Inf).
            2 => Value::Number(rng.gen_range(-1.0e12..1.0e12)),
            3 => Value::Number(rng.gen_range(i32::MIN as i64..i32::MAX as i64 + 1) as f64),
            4 => Value::Number(rng.gen_range(-1000..1000i64) as f64),
            5 => {
                let chars: Vec<char> = STRING_CHARS.chars().collect();
                let n = rng.gen_range(0..24usize);
                Value::String((0..n).map(|_| *rng.choose(&chars).unwrap()).collect())
            }
            6 => {
                let n = rng.gen_range(0..6usize);
                Value::Array((0..n).map(|_| gen_value(rng, depth - 1)).collect())
            }
            _ => {
                let n = rng.gen_range(0..6usize);
                let mut map = BTreeMap::new();
                for _ in 0..n {
                    let klen = rng.gen_range(1..9usize);
                    let key: String = (0..klen)
                        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                        .collect();
                    map.insert(key, gen_value(rng, depth - 1));
                }
                Value::Object(map)
            }
        }
    }

    fn shrink_value(v: &Value) -> Vec<Value> {
        let mut out = Vec::new();
        match v {
            Value::Null => {}
            Value::Bool(_) | Value::Number(_) => out.push(Value::Null),
            Value::String(s) => {
                out.push(Value::Null);
                if !s.is_empty() {
                    let cs: Vec<char> = s.chars().collect();
                    out.push(Value::String(cs[..cs.len() / 2].iter().collect()));
                    for i in 0..cs.len().min(8) {
                        let mut c = cs.clone();
                        c.remove(i);
                        out.push(Value::String(c.into_iter().collect()));
                    }
                }
            }
            Value::Array(items) => {
                out.push(Value::Null);
                // Promote each child (dives below the container), drop each
                // element, then shrink elements in place.
                out.extend(items.iter().cloned());
                for i in 0..items.len() {
                    let mut v = items.clone();
                    v.remove(i);
                    out.push(Value::Array(v));
                }
                for (i, item) in items.iter().enumerate() {
                    for cand in shrink_value(item) {
                        let mut v = items.clone();
                        v[i] = cand;
                        out.push(Value::Array(v));
                        if out.len() >= 48 {
                            return out;
                        }
                    }
                }
            }
            Value::Object(map) => {
                out.push(Value::Null);
                out.extend(map.values().cloned());
                for key in map.keys() {
                    let mut m = map.clone();
                    m.remove(key);
                    out.push(Value::Object(m));
                }
                for (key, val) in map {
                    for cand in shrink_value(val) {
                        let mut m = map.clone();
                        m.insert(key.clone(), cand);
                        out.push(Value::Object(m));
                        if out.len() >= 48 {
                            return out;
                        }
                    }
                }
            }
        }
        out
    }

    impl Strategy for ArbValue {
        type Value = Value;

        fn generate(&self, rng: &mut Rng) -> Value {
            gen_value(rng, self.depth)
        }

        fn shrink(&self, v: &Value) -> Vec<Value> {
            shrink_value(v)
        }
    }

    /// Serialise → parse is the identity for every finite value.
    #[test]
    fn round_trip() {
        prop::check(&Config::default(), &arb_value(), |v| {
            let s = to_string(v);
            let back = parse(&s).map_err(|e| format!("{e:?} for {s:?}"))?;
            prop_assert_eq!(&back, v);
            Ok(())
        });
    }

    /// Pretty output parses back to the same value.
    #[test]
    fn pretty_round_trip() {
        prop::check(&Config::default(), &arb_value(), |v| {
            let back = parse(&to_string_pretty(v)).map_err(|e| format!("{e:?}"))?;
            prop_assert_eq!(&back, v);
            Ok(())
        });
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total() {
        prop::check(&Config::default(), &prop::unicode_string(0..200), |s| {
            let _ = parse(s);
            Ok(())
        });
    }

    /// Parsing arbitrary printable input either fails or yields a value
    /// that round-trips.
    #[test]
    fn parse_then_round_trip() {
        prop::check(&Config::default(), &prop::ascii_string(0..64), |s| {
            if let Ok(v) = parse(s) {
                prop_assert_eq!(&parse(&to_string(&v)).unwrap(), &v);
            }
            Ok(())
        });
    }

    /// Borrow-mode parse is extensionally identical to the owned parse on
    /// every serialised value: same tree, or the same error.
    #[test]
    fn borrow_parse_equals_owned_parse() {
        prop::check(&Config::default(), &arb_value(), |v| {
            for s in [to_string(v), to_string_pretty(v)] {
                let owned = parse(&s);
                let borrowed = borrow::parse(&s).map(borrow::Value::into_owned);
                prop_assert_eq!(&borrowed, &owned);
            }
            Ok(())
        });
    }

    /// ... and on arbitrary (mostly invalid) input, where the errors must
    /// agree byte-for-byte in offset and kind.
    #[test]
    fn borrow_parse_equals_owned_parse_on_garbage() {
        prop::check(&Config::default(), &prop::unicode_string(0..200), |s| {
            let owned = parse(s);
            let borrowed = borrow::parse(s).map(borrow::Value::into_owned);
            prop_assert_eq!(&borrowed, &owned);
            Ok(())
        });
    }

    /// A borrow is never wrong: the zero-copy fast path is taken exactly
    /// when the encoded string has no escapes, and either way the decoded
    /// text equals the owned parser's.
    #[test]
    fn escapes_always_force_the_copy_path() {
        let strategy = (arb_value(), arb_value());
        prop::check(&Config::default(), &strategy, |(service, message)| {
            let line = to_string(&object([
                ("service", service.clone()),
                ("message", message.clone()),
            ]));
            let v = borrow::parse(&line).map_err(|e| format!("{e:?}"))?;
            for key in ["service", "message"] {
                let encoded = to_string(parse(&line).unwrap().get(key).unwrap());
                if let Some(borrow::Value::String(cow)) = v.get(key) {
                    let has_escape = encoded.contains('\\');
                    prop_assert_eq!(
                        matches!(cow, std::borrow::Cow::Owned(_)),
                        has_escape,
                        "copy-path mismatch for {encoded:?}"
                    );
                }
            }
            Ok(())
        });
    }

    /// The ingest fast path `object_fields` agrees with the owned
    /// parse-then-lookup derivation on record-shaped lines (including
    /// escapes, duplicate keys, extra fields, and invalid documents).
    #[test]
    fn object_fields_equals_owned_derivation() {
        let strategy = (arb_value(), prop::unicode_string(0..80));
        prop::check(&Config::cases(400), &strategy, |(v, garbage)| {
            let mut lines = vec![to_string(v), garbage.clone()];
            if let Value::String(s) = v {
                lines.push(format!(
                    "{{\"service\":{0},\"message\":{0},\"service\":{0}}}",
                    to_string(&Value::String(s.clone()))
                ));
            }
            for line in lines {
                let expected = match parse(&line) {
                    Err(e) => Err(borrow::FieldsError::Json(e)),
                    Ok(v) => match v.as_object() {
                        None => Err(borrow::FieldsError::NotAnObject),
                        Some(obj) => Ok([
                            obj.get("service")
                                .and_then(|x| x.as_str())
                                .map(String::from),
                            obj.get("message")
                                .and_then(|x| x.as_str())
                                .map(String::from),
                        ]),
                    },
                };
                let got = borrow::object_fields(&line, ["service", "message"])
                    .map(|f| f.map(|o| o.map(|c| c.into_owned())));
                prop_assert_eq!(&got, &expected, "line {:?}", &line);
            }
            Ok(())
        });
    }
}
