//! A recursive-descent JSON parser (RFC 8259).

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// Parse error categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended mid-value.
    UnexpectedEof,
    /// A byte that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// Malformed number literal.
    BadNumber,
    /// Malformed `\` escape in a string.
    BadEscape,
    /// Invalid `\uXXXX` escape (bad hex or unpaired surrogate).
    BadUnicodeEscape,
    /// Input is not valid UTF-8 inside a string.
    BadUtf8,
    /// Trailing non-whitespace after the top-level value.
    TrailingData,
    /// Object/array nesting beyond the safety limit.
    TooDeep,
    /// Control character appearing unescaped inside a string.
    ControlCharInString,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {:?}",
            self.offset, self.kind
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth; protects against stack exhaustion on adversarial
/// input piped into the ingester.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document. Trailing whitespace is allowed; any other
/// trailing data is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err(ErrorKind::TrailingData));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind) -> ParseError {
        ParseError {
            offset: self.i,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(x) if x == c => {
                self.i += 1;
                Ok(())
            }
            Some(x) => Err(self.err(ErrorKind::UnexpectedChar(x as char))),
            None => Err(self.err(ErrorKind::UnexpectedEof)),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword(b"true", Value::Bool(true)),
            Some(b'f') => self.keyword(b"false", Value::Bool(false)),
            Some(b'n') => self.keyword(b"null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn keyword(&mut self, word: &[u8], v: Value) -> Result<Value, ParseError> {
        if self.b.len() - self.i >= word.len() && &self.b[self.i..self.i + word.len()] == word {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(ErrorKind::UnexpectedChar(self.peek().unwrap_or(0) as char)))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(map));
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            // Fast path: copy a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.i += 1;
            }
            if self.i > start {
                let chunk = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| self.err(ErrorKind::BadUtf8))?;
                out.push_str(chunk);
            }
            match self.peek() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err(ErrorKind::ControlCharInString)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.err(ErrorKind::UnexpectedEof))?;
        self.i += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') && self.b.get(self.i + 1) == Some(&b'u') {
                        self.i += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err(ErrorKind::BadUnicodeEscape));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?
                    } else {
                        return Err(self.err(ErrorKind::BadUnicodeEscape));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(ErrorKind::BadUnicodeEscape));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?
                };
                out.push(ch);
            }
            _ => return Err(self.err(ErrorKind::BadEscape)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.b.len() - self.i < 4 {
            return Err(self.err(ErrorKind::UnexpectedEof));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.b[self.i];
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a' + 10) as u32,
                b'A'..=b'F' => (c - b'A' + 10) as u32,
                _ => return Err(self.err(ErrorKind::BadUnicodeEscape)),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part: `0` or non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while self.peek().map_or(false, |c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err(ErrorKind::BadNumber)),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !self.peek().map_or(false, |c| c.is_ascii_digit()) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while self.peek().map_or(false, |c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            if !self.peek().map_or(false, |c| c.is_ascii_digit()) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while self.peek().map_or(false, |c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(ErrorKind::BadNumber))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::object;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn stream_item_shape() {
        let v = parse(r#"{"service": "sshd", "message": "Accepted password for root"}"#).unwrap();
        assert_eq!(v.get("service").unwrap().as_str(), Some("sshd"));
        assert_eq!(
            v.get("message").unwrap().as_str(),
            Some("Accepted password for root")
        );
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": [true, null]}], "c": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(v.get("c"), Some(&object::<String, Value>([])));
    }

    #[test]
    fn escapes() {
        assert_eq!(
            parse(r#""a\nb\t\"c\"\\""#).unwrap().as_str(),
            Some("a\nb\t\"c\"\\")
        );
        assert_eq!(parse(r#""étoile""#).unwrap().as_str(), Some("étoile"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""\/""#).unwrap().as_str(), Some("/"));
    }

    #[test]
    fn bad_escapes_rejected() {
        assert!(matches!(
            parse(r#""\q""#).unwrap_err().kind,
            ErrorKind::BadEscape
        ));
        assert!(matches!(
            parse(r#""\u12""#).unwrap_err().kind,
            ErrorKind::UnexpectedEof
        ));
        assert!(matches!(
            parse(r#""\ud800x""#).unwrap_err().kind,
            ErrorKind::BadUnicodeEscape
        ));
        assert!(matches!(
            parse(r#""\udc00""#).unwrap_err().kind,
            ErrorKind::BadUnicodeEscape
        ));
    }

    #[test]
    fn unescaped_control_char_rejected() {
        assert!(matches!(
            parse("\"a\u{01}b\"").unwrap_err().kind,
            ErrorKind::ControlCharInString
        ));
    }

    #[test]
    fn trailing_data_rejected() {
        assert!(matches!(
            parse("1 2").unwrap_err().kind,
            ErrorKind::TrailingData
        ));
        assert!(parse("  1  ").is_ok());
    }

    #[test]
    fn truncated_inputs() {
        for s in ["{", "[1,", "\"abc", "{\"a\":", "tru", "-"] {
            assert!(parse(s).is_err(), "should fail: {s}");
        }
    }

    #[test]
    fn bad_numbers() {
        for s in ["01", "1.", "1e", "1e+", ".5", "- 1"] {
            assert!(parse(s).is_err(), "should fail: {s}");
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let s = "[".repeat(200) + &"]".repeat(200);
        assert!(matches!(parse(&s).unwrap_err().kind, ErrorKind::TooDeep));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(Default::default()));
        assert_eq!(parse("[ ]").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse(" {\n\t\"a\" :\r 1 ,\"b\": [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }
}
