//! JSON serialisation.

use crate::value::Value;

/// Serialise a value to compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

/// Serialise a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_nan() || n.is_infinite() {
        // JSON has no NaN/Inf; emit null like most tolerant encoders.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

/// Write a JSON string literal with all required escaping.
pub fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::value::object;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&Value::Null), "null");
        assert_eq!(to_string(&Value::Bool(true)), "true");
        assert_eq!(to_string(&Value::Number(42.0)), "42");
        assert_eq!(to_string(&Value::Number(0.5)), "0.5");
        assert_eq!(to_string(&Value::String("hi".into())), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            to_string(&Value::String("a\"b\\c\nd".into())),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(to_string(&Value::String("\u{01}".into())), "\"\\u0001\"");
    }

    #[test]
    fn containers() {
        let v = object([
            ("b", Value::from(1i64)),
            ("a", Value::Array(vec![Value::Null])),
        ]);
        assert_eq!(to_string(&v), r#"{"a":[null],"b":1}"#);
    }

    #[test]
    fn round_trip() {
        let inputs = [
            r#"{"service":"sshd","message":"Accepted password for root from 1.2.3.4"}"#,
            r#"[1,2.5,"x",null,true,{"k":[]}]"#,
        ];
        for s in inputs {
            let v = parse(s).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v);
        }
    }

    #[test]
    fn non_finite_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn pretty_printing() {
        let v = object([("a", Value::from(1i64))]);
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": 1\n}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])), "[]");
    }
}
