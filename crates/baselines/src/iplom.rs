//! IPLoM: Iterative Partitioning Log Mining
//! (Makanju, Zincir-Heywood, Milios — KDD 2009).
//!
//! "After tokenising, the algorithm takes four steps. First, it clusters the
//! token sets that are of the same length, then it builds sub-clusters based
//! on token position. In other words, it looks for a word that is common at
//! the same position of many messages. The third step searches for bijective
//! relationships between two tokens, i.e. where the two values are always
//! the same in their respective positions. The last step is to output the
//! pattern. If all the values at the same position are the same, it is
//! constant in the pattern, if there is a high variation, then it is marked
//! as a variable." (paper §V)
//!
//! This implementation keeps the published structure (four steps, a cluster
//! goodness threshold that stops partitioning of already-coherent clusters,
//! and the 1-1 / 1-M / M-1 / M-M bijection cases) with the simplification
//! that M-M relations are left unsplit.

use crate::template::{tokenize, BatchParser, ParseResult, WILDCARD};
use std::collections::{HashMap, HashSet};

/// IPLoM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IplomConfig {
    /// Cluster goodness threshold: a partition whose fraction of constant
    /// positions is at least this is not partitioned further.
    pub cluster_goodness: f64,
    /// Maximum distinct values a position may have and still be used as a
    /// step-2 split position, as a fraction of the partition size.
    pub split_cardinality_ratio: f64,
    /// Partitions smaller than this are emitted as-is.
    pub min_partition: usize,
}

impl Default for IplomConfig {
    fn default() -> Self {
        IplomConfig {
            cluster_goodness: 0.6,
            split_cardinality_ratio: 0.5,
            min_partition: 2,
        }
    }
}

/// The IPLoM parser.
#[derive(Debug, Clone, Default)]
pub struct Iplom {
    config: IplomConfig,
}

impl Iplom {
    /// IPLoM with default parameters.
    pub fn new() -> Iplom {
        Iplom::default()
    }

    /// IPLoM with explicit parameters.
    pub fn with_config(config: IplomConfig) -> Iplom {
        Iplom { config }
    }

    /// Distinct token counts per position over a partition.
    fn cardinalities(msgs: &[Vec<String>], members: &[usize]) -> Vec<usize> {
        let width = msgs[members[0]].len();
        (0..width)
            .map(|pos| {
                let mut set = HashSet::new();
                for &mi in members {
                    set.insert(msgs[mi][pos].as_str());
                }
                set.len()
            })
            .collect()
    }

    /// Fraction of positions with a single distinct value.
    fn goodness(cards: &[usize]) -> f64 {
        if cards.is_empty() {
            return 1.0;
        }
        cards.iter().filter(|&&c| c == 1).count() as f64 / cards.len() as f64
    }

    /// Step 2: split by the position with the lowest cardinality > 1, if its
    /// cardinality is small relative to the partition.
    fn step2_split(
        &self,
        msgs: &[Vec<String>],
        members: &[usize],
        cards: &[usize],
    ) -> Option<Vec<Vec<usize>>> {
        let limit = ((members.len() as f64) * self.config.split_cardinality_ratio).ceil() as usize;
        let pos = cards
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 1 && c <= limit.max(2))
            .min_by_key(|(_, &c)| c)
            .map(|(p, _)| p)?;
        let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
        for &mi in members {
            groups.entry(msgs[mi][pos].as_str()).or_default().push(mi);
        }
        if groups.len() < 2 {
            return None;
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_by_key(|g| *g.iter().min().unwrap());
        Some(out)
    }

    /// Step 3: bijection search between the two positions whose cardinality
    /// equals the most frequent cardinality (> 1). 1-1 and 1-M / M-1
    /// relations split on the "1" side; M-M partitions stay together.
    fn step3_split(
        &self,
        msgs: &[Vec<String>],
        members: &[usize],
        cards: &[usize],
    ) -> Option<Vec<Vec<usize>>> {
        // Most frequent cardinality among positions with card > 1.
        let mut freq: HashMap<usize, usize> = HashMap::new();
        for &c in cards.iter().filter(|&&c| c > 1) {
            *freq.entry(c).or_insert(0) += 1;
        }
        let (&mode, _) = freq.iter().max_by_key(|(_, &n)| n)?;
        let chosen: Vec<usize> = cards
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == mode)
            .map(|(p, _)| p)
            .take(2)
            .collect();
        if chosen.len() < 2 {
            return None;
        }
        let (p1, p2) = (chosen[0], chosen[1]);
        // Forward and reverse mappings between values at p1 and p2.
        let mut fwd: HashMap<&str, HashSet<&str>> = HashMap::new();
        let mut rev: HashMap<&str, HashSet<&str>> = HashMap::new();
        for &mi in members {
            let a = msgs[mi][p1].as_str();
            let b = msgs[mi][p2].as_str();
            fwd.entry(a).or_default().insert(b);
            rev.entry(b).or_default().insert(a);
        }
        let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
        for &mi in members {
            let a = msgs[mi][p1].as_str();
            let b = msgs[mi][p2].as_str();
            let a_maps = fwd[a].len();
            let b_maps = rev[b].len();
            let key = if a_maps == 1 && b_maps == 1 {
                format!("11:{a}") // 1-1: one sub-partition per pair
            } else if a_maps == 1 {
                format!("m1:{b}") // M-1: split on the "1" side (p2 value)
            } else if b_maps == 1 {
                format!("1m:{a}") // 1-M: split on the p1 value
            } else {
                "mm".to_string() // M-M: leave together
            };
            groups.entry(key).or_default().push(mi);
        }
        if groups.len() < 2 {
            return None;
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_by_key(|g| *g.iter().min().unwrap());
        Some(out)
    }
}

impl BatchParser for Iplom {
    fn name(&self) -> &'static str {
        "IPLoM"
    }

    fn parse_batch(&self, lines: &[String]) -> ParseResult {
        let msgs: Vec<Vec<String>> = lines
            .iter()
            .map(|l| tokenize(l).iter().map(|t| t.to_string()).collect())
            .collect();
        // Step 1: partition by token count.
        let mut by_len: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, m) in msgs.iter().enumerate() {
            by_len.entry(m.len()).or_default().push(i);
        }
        let mut lens: Vec<usize> = by_len.keys().copied().collect();
        lens.sort_unstable();

        let mut final_partitions: Vec<Vec<usize>> = Vec::new();
        for len in lens {
            let members = by_len[&len].clone();
            if len == 0 {
                final_partitions.push(members);
                continue;
            }
            // Step 2 on each length partition.
            let mut queue = vec![(members, 2u8)];
            while let Some((part, step)) = queue.pop() {
                if part.len() < self.config.min_partition {
                    final_partitions.push(part);
                    continue;
                }
                let cards = Self::cardinalities(&msgs, &part);
                if Self::goodness(&cards) >= self.config.cluster_goodness {
                    final_partitions.push(part);
                    continue;
                }
                let split = match step {
                    2 => self.step2_split(&msgs, &part, &cards),
                    _ => self.step3_split(&msgs, &part, &cards),
                };
                match split {
                    Some(subs) if step == 2 => {
                        for s in subs {
                            queue.push((s, 3));
                        }
                    }
                    Some(subs) => final_partitions.extend(subs),
                    None if step == 2 => queue.push((part, 3)),
                    None => final_partitions.push(part),
                }
            }
        }
        final_partitions.sort_by_key(|p| *p.iter().min().unwrap_or(&usize::MAX));

        // Step 4: derive templates and assignments.
        let mut assignments = vec![0usize; lines.len()];
        let mut templates = Vec::with_capacity(final_partitions.len());
        for part in &final_partitions {
            let event_id = templates.len();
            let template: String = if part.is_empty() || msgs[part[0]].is_empty() {
                String::new()
            } else {
                let cards = Self::cardinalities(&msgs, part);
                let first = &msgs[part[0]];
                first
                    .iter()
                    .zip(&cards)
                    .map(|(tok, &c)| if c == 1 { tok.as_str() } else { WILDCARD })
                    .collect::<Vec<&str>>()
                    .join(" ")
            };
            templates.push(template);
            for &mi in part {
                assignments[mi] = event_id;
            }
        }
        ParseResult {
            assignments,
            templates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn step1_by_length() {
        let r = Iplom::new().parse_batch(&lines(&["a b", "a b c", "a b"]));
        assert_eq!(r.assignments[0], r.assignments[2]);
        assert_ne!(r.assignments[0], r.assignments[1]);
    }

    #[test]
    fn step2_low_cardinality_split() {
        let r = Iplom::new().parse_batch(&lines(&[
            "start job j1 now",
            "start job j2 now",
            "stop task t1 now",
            "stop task t2 now",
        ]));
        assert_eq!(r.event_count(), 2);
        let mut t = r.templates.clone();
        t.sort();
        assert_eq!(t, vec!["start job <*> now", "stop task <*> now"]);
    }

    #[test]
    fn good_clusters_stop_early() {
        let r = Iplom::new().parse_batch(&lines(&[
            "link up on port 1",
            "link up on port 2",
            "link up on port 3",
        ]));
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.templates[0], "link up on port <*>");
    }

    #[test]
    fn constant_messages_constant_template() {
        let r = Iplom::new().parse_batch(&lines(&["sync done", "sync done"]));
        assert_eq!(r.templates[0], "sync done");
    }

    #[test]
    fn bijection_splits_correlated_positions() {
        // Positions 1 and 2 are 1-1 correlated (open↔file, close↔socket):
        // step 3 separates the two flows even though step 2's low-cardinality
        // split may pick position 1 first (same outcome either way).
        let r = Iplom::new().parse_batch(&lines(&[
            "op open file f1 zz",
            "op open file f2 zz",
            "op close socket s1 zz",
            "op close socket s2 zz",
        ]));
        assert_eq!(r.event_count(), 2);
    }

    #[test]
    fn empty_input_and_empty_lines() {
        let r = Iplom::new().parse_batch(&lines(&["", "  ", "x y"]));
        // Empty token lists form their own partition.
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_ne!(r.assignments[0], r.assignments[2]);
    }
}
