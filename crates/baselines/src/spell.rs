//! Spell: streaming parsing of system event logs via longest common
//! subsequence (Du & Li — ICDM 2016).
//!
//! "The online approach followed by Spell performs tokenisation using spaces
//! [...] For the analysis phase, it uses a longest common subsequence
//! methodology to build a map of the tokens. As with Drain, each new message
//! is tested to see if it matches a pattern already in the map, otherwise a
//! new pattern entry is added." (paper §V)
//!
//! For each incoming message, the LCS object whose template has the longest
//! common subsequence with the message is selected; the match is accepted if
//! the LCS covers at least `tau` of the message length, and the object's
//! template is refined to the LCS (non-common positions become `<*>`).

use crate::template::{lcs_len, lcs_seq, tokenize, BatchParser, ParseResult, WILDCARD};

/// Spell configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpellConfig {
    /// Minimum fraction of the message covered by the LCS to join an object
    /// (the published default is 0.5).
    pub tau: f64,
}

impl Default for SpellConfig {
    fn default() -> Self {
        SpellConfig { tau: 0.5 }
    }
}

/// The Spell parser.
#[derive(Debug, Clone, Default)]
pub struct Spell {
    config: SpellConfig,
}

impl Spell {
    /// Spell with default parameters.
    pub fn new() -> Spell {
        Spell::default()
    }

    /// Spell with explicit parameters.
    pub fn with_config(config: SpellConfig) -> Spell {
        Spell { config }
    }
}

#[derive(Debug)]
struct LcsObject {
    /// Template tokens; `<*>` marks variable gaps.
    template: Vec<String>,
    /// Constant tokens only (the subsequence the LCS is computed against).
    constants: Vec<String>,
}

impl BatchParser for Spell {
    fn name(&self) -> &'static str {
        "Spell"
    }

    fn parse_batch(&self, lines: &[String]) -> ParseResult {
        let mut objects: Vec<LcsObject> = Vec::new();
        let mut assignments = Vec::with_capacity(lines.len());
        for line in lines {
            let tokens = tokenize(line);
            // Pre-masked wildcards are variables, not content: they neither
            // match constants nor count toward the coverage requirement.
            let content_len = tokens.iter().filter(|t| **t != WILDCARD).count();
            // Find the object with the maximal LCS against the message.
            let mut best: Option<(usize, usize)> = None; // (lcs, object idx)
            for (oi, obj) in objects.iter().enumerate() {
                // Cheap upper bound first: LCS can't exceed min length.
                if let Some((b, _)) = best {
                    if obj.constants.len().min(tokens.len()) <= b {
                        continue;
                    }
                }
                let l = lcs_len(&tokens, &obj.constants);
                if best.map_or(true, |(b, _)| l > b) {
                    best = Some((l, oi));
                }
            }
            match best {
                Some((l, oi)) if (l as f64) >= self.config.tau * (content_len as f64) && l > 0 => {
                    // Refine the template: keep the LCS, wildcard the rest.
                    let obj = &mut objects[oi];
                    let common = lcs_seq(&tokens, &obj.constants);
                    obj.template = rebuild_template(&tokens, &common);
                    obj.constants = common;
                    assignments.push(oi);
                }
                _ => {
                    let oi = objects.len();
                    objects.push(LcsObject {
                        template: tokens.iter().map(|t| t.to_string()).collect(),
                        // Pre-masked `<*>` tokens are variables already; they
                        // must not count as constants or the LCS would match
                        // wildcards against wildcards across unrelated events.
                        constants: tokens
                            .iter()
                            .filter(|t| **t != WILDCARD)
                            .map(|t| t.to_string())
                            .collect(),
                    });
                    assignments.push(oi);
                }
            }
        }
        ParseResult {
            assignments,
            templates: objects.iter().map(|o| o.template.join(" ")).collect(),
        }
    }
}

/// Rebuild a template from a message and the common subsequence: walk the
/// message, keeping tokens on the LCS and collapsing runs of non-common
/// tokens into single `<*>` gaps.
fn rebuild_template(tokens: &[&str], common: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut ci = 0usize;
    let mut gap_open = false;
    for tok in tokens {
        if ci < common.len() && *tok == common[ci] {
            out.push((*tok).to_string());
            ci += 1;
            gap_open = false;
        } else if !gap_open {
            out.push(WILDCARD.to_string());
            gap_open = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn groups_by_lcs() {
        let r = Spell::new().parse_batch(&lines(&[
            "Temperature 45 exceeds warning threshold",
            "Temperature 78 exceeds warning threshold",
        ]));
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.templates[0], "Temperature <*> exceeds warning threshold");
    }

    #[test]
    fn lcs_handles_different_lengths() {
        // Unlike Drain, Spell can group messages of different token counts.
        let r = Spell::new().parse_batch(&lines(&[
            "command failed on node a12 retrying",
            "command failed on node a12 b17 retrying",
        ]));
        assert_eq!(r.event_count(), 1);
    }

    #[test]
    fn distinct_events_stay_apart() {
        let r = Spell::new().parse_batch(&lines(&[
            "power supply unit nominal",
            "fan tray removed suddenly now",
        ]));
        assert_eq!(r.event_count(), 2);
    }

    #[test]
    fn tau_threshold_respected() {
        // Overlap of exactly 1 token out of 4 (< tau/2) must not merge.
        let r =
            Spell::new().parse_batch(&lines(&["alpha beta gamma delta", "alpha one two three"]));
        assert_eq!(r.event_count(), 2);
    }

    #[test]
    fn consecutive_gaps_collapse() {
        let tokens = vec!["a", "x", "y", "b"];
        let common = vec!["a".to_string(), "b".to_string()];
        assert_eq!(rebuild_template(&tokens, &common), vec!["a", "<*>", "b"]);
    }

    #[test]
    fn empty_input() {
        let r = Spell::new().parse_batch(&[]);
        assert_eq!(r.event_count(), 0);
    }
}
