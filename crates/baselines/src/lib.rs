//! # baselines
//!
//! From-scratch Rust implementations of the four best-performing log parsers
//! from Zhu et al., *Tools and Benchmarks for Automated Log Parsing*
//! (ICSE-SEIP 2019) — the comparison set used by the Sequence-RTG paper's
//! Table II ("Best" column) and Table III:
//!
//! * [`Drain`] — fixed-depth parse tree (He et al., ICWS 2017); best average
//!   accuracy in the study.
//! * [`Iplom`] — iterative partitioning (Makanju et al., KDD 2009).
//! * [`Ael`] — Anonymize / Tokenize / Categorize (Jiang et al., QSIC 2008).
//! * [`Spell`] — streaming longest-common-subsequence parsing (Du & Li,
//!   ICDM 2016).
//!
//! All four implement [`BatchParser`]: feed the (pre-processed) log content
//! lines, get an event assignment per line plus the final templates.

#![warn(missing_docs)]

pub mod ael;
pub mod drain;
pub mod iplom;
pub mod spell;
pub mod template;

pub use ael::{Ael, AelConfig};
pub use drain::{Drain, DrainConfig};
pub use iplom::{Iplom, IplomConfig};
pub use spell::{Spell, SpellConfig};
pub use template::{BatchParser, ParseResult};

/// All four baseline parsers, boxed, in the order of the paper's Table III.
pub fn all_parsers() -> Vec<Box<dyn BatchParser>> {
    vec![
        Box::new(Ael::new()),
        Box::new(Iplom::new()),
        Box::new(Spell::new()),
        Box::new(Drain::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small mixed workload every parser must handle without panicking and
    /// with a sane event count.
    fn workload() -> Vec<String> {
        let mut v = Vec::new();
        for i in 0..30 {
            v.push(format!(
                "Receiving block blk_{i} src /10.0.0.{} dest /10.0.0.9",
                i % 5
            ));
            v.push(format!(
                "PacketResponder {} for block blk_{i} terminating",
                i % 3
            ));
            v.push("NameSystem allocateBlock completed".to_string());
        }
        v
    }

    #[test]
    fn all_parsers_run_on_shared_workload() {
        let lines = workload();
        for parser in all_parsers() {
            let r = parser.parse_batch(&lines);
            assert_eq!(r.assignments.len(), lines.len(), "{}", parser.name());
            assert!(
                (1..=20).contains(&r.event_count()),
                "{} produced {} events",
                parser.name(),
                r.event_count()
            );
            // Every assignment refers to a valid template.
            assert!(
                r.assignments.iter().all(|&a| a < r.event_count()),
                "{}",
                parser.name()
            );
        }
    }

    #[test]
    fn parser_names_are_distinct() {
        let names: Vec<&str> = all_parsers().iter().map(|p| p.name()).collect();
        let set: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn assignments_deterministic() {
        let lines = workload();
        for parser in all_parsers() {
            let a = parser.parse_batch(&lines);
            let b = parser.parse_batch(&lines);
            assert_eq!(a, b, "{} is nondeterministic", parser.name());
        }
    }
}
