//! Drain: an online log parsing approach with fixed depth tree
//! (He, Zhu, Zheng, Lyu — ICWS 2017).
//!
//! "The Drain algorithm is ranked best overall. It is an online algorithm
//! [...] the message is tokenised and sent to a fixed depth parsing tree,
//! created from other messages of the same token length, to determine the
//! pattern that it best matches. If no match is found, it adds a new path in
//! the tree." (paper §V)
//!
//! Implementation follows the published algorithm: a root keyed by token
//! count, then `depth - 2` internal levels keyed by the leading tokens
//! (tokens containing digits route to the `<*>` child; full internal nodes
//! route new tokens to `<*>` as well), and leaves holding log groups chosen
//! by sequence similarity against a threshold `st`.

use crate::template::{
    has_digits, merge_template, seq_similarity, tokenize, BatchParser, ParseResult, WILDCARD,
};
use std::collections::HashMap;

/// Drain configuration (defaults match the logparser toolkit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrainConfig {
    /// Total tree depth (root and leaf included); `depth - 2` token levels.
    pub depth: usize,
    /// Similarity threshold for joining an existing group.
    pub similarity_threshold: f64,
    /// Maximum children of an internal node before overflowing into `<*>`.
    pub max_children: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            depth: 4,
            similarity_threshold: 0.4,
            max_children: 100,
        }
    }
}

/// The Drain parser.
#[derive(Debug, Clone, Default)]
pub struct Drain {
    config: DrainConfig,
}

impl Drain {
    /// Drain with default parameters.
    pub fn new() -> Drain {
        Drain::default()
    }

    /// Drain with explicit parameters.
    pub fn with_config(config: DrainConfig) -> Drain {
        Drain { config }
    }
}

#[derive(Debug)]
struct Group {
    template: Vec<String>,
    event_id: usize,
}

#[derive(Debug, Default)]
struct Node {
    children: HashMap<String, Node>,
    groups: Vec<Group>,
}

impl BatchParser for Drain {
    fn name(&self) -> &'static str {
        "Drain"
    }

    fn parse_batch(&self, lines: &[String]) -> ParseResult {
        let mut roots: HashMap<usize, Node> = HashMap::new();
        let mut templates: Vec<Vec<String>> = Vec::new();
        let mut assignments = Vec::with_capacity(lines.len());
        let token_levels = self.config.depth.saturating_sub(2).max(1);

        for line in lines {
            let tokens = tokenize(line);
            let root = roots.entry(tokens.len()).or_default();
            // Descend the fixed-depth prefix.
            let mut node = root;
            for tok in tokens.iter().take(token_levels) {
                let key = if has_digits(tok) {
                    WILDCARD.to_string()
                } else {
                    (*tok).to_string()
                };
                let full = node.children.len() >= self.config.max_children
                    && !node.children.contains_key(&key);
                let key = if full { WILDCARD.to_string() } else { key };
                node = node.children.entry(key).or_default();
            }
            // Find the most similar group at the leaf.
            let mut best: Option<(f64, usize)> = None;
            for (gi, g) in node.groups.iter().enumerate() {
                let sim = seq_similarity(&g.template, &tokens);
                if best.map_or(true, |(b, _)| sim > b) {
                    best = Some((sim, gi));
                }
            }
            match best {
                Some((sim, gi)) if sim >= self.config.similarity_threshold => {
                    let g = &mut node.groups[gi];
                    merge_template(&mut templates[g.event_id], &tokens);
                    g.template = templates[g.event_id].clone();
                    assignments.push(g.event_id);
                }
                _ => {
                    let event_id = templates.len();
                    templates.push(tokens.iter().map(|t| t.to_string()).collect());
                    node.groups.push(Group {
                        template: templates[event_id].clone(),
                        event_id,
                    });
                    assignments.push(event_id);
                }
            }
        }
        ParseResult {
            assignments,
            templates: templates.iter().map(|t| t.join(" ")).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn groups_same_event() {
        let r = Drain::new().parse_batch(&lines(&[
            "Receiving block blk_1 src 10.0.0.1 dest 10.0.0.2",
            "Receiving block blk_2 src 10.0.0.3 dest 10.0.0.4",
            "Receiving block blk_3 src 10.0.0.5 dest 10.0.0.6",
        ]));
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.assignments, vec![0, 0, 0]);
        assert!(r.templates[0].starts_with("Receiving block <*>"));
    }

    #[test]
    fn separates_different_events() {
        let r = Drain::new().parse_batch(&lines(&[
            "Verification succeeded for blk_1",
            "Deleting block blk_1 file /data/f1",
            "Verification succeeded for blk_2",
        ]));
        assert_eq!(r.event_count(), 2);
        assert_eq!(r.assignments[0], r.assignments[2]);
        assert_ne!(r.assignments[0], r.assignments[1]);
    }

    #[test]
    fn length_partition_is_strict() {
        let r = Drain::new().parse_batch(&lines(&["a b c", "a b", "a b c"]));
        assert_eq!(r.event_count(), 2);
        assert_eq!(r.assignments, vec![0, 1, 0]);
    }

    #[test]
    fn digit_tokens_route_to_wildcard_child() {
        // First tokens differ but both contain digits → same subtree and
        // (given high similarity) the same group.
        let r =
            Drain::new().parse_batch(&lines(&["17 workers started ok", "42 workers started ok"]));
        assert_eq!(r.event_count(), 1);
        assert!(r.templates[0].contains("workers started ok"));
    }

    #[test]
    fn low_similarity_splits_groups() {
        let r = Drain::new().parse_batch(&lines(&["alpha beta gamma delta", "alpha zz yy xx"]));
        // Similarity 1/4 < 0.4 → two events.
        assert_eq!(r.event_count(), 2);
    }

    #[test]
    fn empty_input() {
        let r = Drain::new().parse_batch(&[]);
        assert!(r.assignments.is_empty());
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn online_behaviour_is_order_sensitive_but_stable() {
        let msgs = lines(&[
            "conn from 10.0.0.1 closed",
            "conn from 10.0.0.2 closed",
            "conn from 10.0.0.1 opened",
        ]);
        let r = Drain::new().parse_batch(&msgs);
        // closed/closed join; opened differs at the last position only:
        // sim 3/4 >= 0.4 → merges too (classic Drain over-merge).
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.templates[0], "conn from <*> <*>");
    }
}
