//! Shared helpers for the baseline parsers.
//!
//! All four baselines from Zhu et al. (AEL, IPLoM, Spell, Drain) tokenise by
//! whitespace and express templates as token sequences where variable
//! positions are `<*>`.

/// The variable marker used by the LogPAI tooling and the pre-processed
/// LogHub data.
pub const WILDCARD: &str = "<*>";

/// Whitespace tokenisation (the baselines' shared tokeniser).
pub fn tokenize(line: &str) -> Vec<&str> {
    line.split_whitespace().collect()
}

/// `true` if the token contains any ASCII digit (Drain's heuristic for
/// "probably a variable").
pub fn has_digits(token: &str) -> bool {
    token.bytes().any(|b| b.is_ascii_digit())
}

/// Merge a template with a message of the same length: positions that differ
/// become `<*>`.
pub fn merge_template(template: &mut Vec<String>, tokens: &[&str]) {
    debug_assert_eq!(template.len(), tokens.len());
    for (t, tok) in template.iter_mut().zip(tokens) {
        if t != tok && t != WILDCARD {
            *t = WILDCARD.to_string();
        }
    }
}

/// Sequence similarity used by Drain: the fraction of positions where the
/// template token equals the message token (wildcards never count as equal,
/// per the published algorithm, so heavily wildcarded groups don't attract
/// everything).
pub fn seq_similarity(template: &[String], tokens: &[&str]) -> f64 {
    if template.is_empty() {
        return 0.0;
    }
    let same = template
        .iter()
        .zip(tokens)
        .filter(|(t, m)| t.as_str() == **m)
        .count();
    same as f64 / template.len() as f64
}

/// Longest common subsequence length (Spell's core measure).
pub fn lcs_len(a: &[&str], b: &[String]) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            cur[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// The LCS itself (not just its length), for Spell's template update.
pub fn lcs_seq(a: &[&str], b: &[String]) -> Vec<String> {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    let mut out = Vec::with_capacity(dp[n][m]);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        if a[i - 1] == b[j - 1] {
            out.push(a[i - 1].to_string());
            i -= 1;
            j -= 1;
        } else if dp[i - 1][j] >= dp[i][j - 1] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    out.reverse();
    out
}

/// Render a template token sequence as a single string.
pub fn render(template: &[String]) -> String {
    template.join(" ")
}

/// The result of running a batch parser: one event id per input line, plus
/// the final template for each event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseResult {
    /// Event (cluster) assignment for each input line, in input order.
    pub assignments: Vec<usize>,
    /// Template text per event id.
    pub templates: Vec<String>,
}

impl ParseResult {
    /// Number of distinct events found.
    pub fn event_count(&self) -> usize {
        self.templates.len()
    }
}

/// A batch log parser over raw text lines.
pub trait BatchParser {
    /// The parser's display name.
    fn name(&self) -> &'static str;
    /// Group the lines into events.
    fn parse_batch(&self, lines: &[String]) -> ParseResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_collapses_whitespace() {
        assert_eq!(tokenize("a  b\t c"), vec!["a", "b", "c"]);
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn digits() {
        assert!(has_digits("blk_123"));
        assert!(!has_digits("word"));
    }

    #[test]
    fn merge() {
        let mut t = vec!["open".to_string(), "file".to_string(), "a.txt".to_string()];
        merge_template(&mut t, &["open", "file", "b.txt"]);
        assert_eq!(render(&t), "open file <*>");
        // Wildcard stays wildcard.
        merge_template(&mut t, &["open", "file", "a.txt"]);
        assert_eq!(render(&t), "open file <*>");
    }

    #[test]
    fn similarity() {
        let t = vec!["a".to_string(), WILDCARD.to_string(), "c".to_string()];
        assert!((seq_similarity(&t, &["a", "b", "c"]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(seq_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn lcs() {
        let b: Vec<String> = ["x", "a", "y", "b", "z"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(lcs_len(&["a", "b"], &b), 2);
        assert_eq!(lcs_seq(&["a", "q", "b"], &b), vec!["a", "b"]);
        assert_eq!(lcs_len(&[], &b), 0);
    }
}
