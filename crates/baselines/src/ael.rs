//! AEL: Abstracting Execution Logs to Execution Events
//! (Jiang, Hassan, Flora, Hamann — QSIC 2008).
//!
//! "AEL is a log abstraction algorithm made of three steps: Anonymize,
//! Tokenize, and Categorize. The Anonymize step uses simple heuristics to
//! identify variables in the messages defined by text that followed an equal
//! sign or certain keywords. These values are replaced in the log message
//! with a variable marker. The Tokenize method divides the messages into
//! groups based on the count of words and number of variables marked in the
//! text. Finally the Categorize method compares the contents inside each
//! group to determine the patterns." (paper §V)
//!
//! A final *reconcile* pass (part of the published algorithm) merges events
//! inside a bin that differ at a single token position, when several such
//! near-duplicates exist.

use crate::template::{tokenize, BatchParser, ParseResult, WILDCARD};
use std::collections::HashMap;

/// AEL configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AelConfig {
    /// Minimum number of near-duplicate events (differing at one position)
    /// required before reconcile merges them. The published heuristic uses a
    /// small threshold; default 2.
    pub merge_threshold: usize,
}

impl Default for AelConfig {
    fn default() -> Self {
        AelConfig { merge_threshold: 2 }
    }
}

/// The AEL parser.
#[derive(Debug, Clone, Default)]
pub struct Ael {
    config: AelConfig,
}

impl Ael {
    /// AEL with default parameters.
    pub fn new() -> Ael {
        Ael::default()
    }

    /// AEL with explicit parameters.
    pub fn with_config(config: AelConfig) -> Ael {
        Ael { config }
    }
}

/// Anonymize: replace obvious dynamic values with `<*>`.
///
/// Heuristics from the paper: values after `=` (also `:` pairs), pure
/// numbers, hex-ish identifiers, IP-like dotted tokens.
pub fn anonymize(token: &str) -> String {
    // key=value → key=<*>
    if let Some(eq) = token.find('=') {
        let (key, _value) = token.split_at(eq);
        return format!("{key}={WILDCARD}");
    }
    let bare = token.trim_matches(|c: char| ",;()[]".contains(c));
    if bare.is_empty() {
        return token.to_string();
    }
    let digits = bare.bytes().filter(|b| b.is_ascii_digit()).count();
    // Pure numbers (possibly decorated).
    if digits > 0
        && bare
            .bytes()
            .all(|b| b.is_ascii_digit() || b == b'.' || b == b'-' || b == b'+')
    {
        return WILDCARD.to_string();
    }
    // Long identifiers dominated by digits (blk_123456, 0xdeadbeef).
    if digits * 2 >= bare.len() {
        return WILDCARD.to_string();
    }
    token.to_string()
}

impl BatchParser for Ael {
    fn name(&self) -> &'static str {
        "AEL"
    }

    fn parse_batch(&self, lines: &[String]) -> ParseResult {
        // Anonymize + tokenize.
        let anonymized: Vec<Vec<String>> = lines
            .iter()
            .map(|l| tokenize(l).iter().map(|t| anonymize(t)).collect())
            .collect();
        // Tokenize step: bins by (word count, variable count).
        let mut bins: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (i, toks) in anonymized.iter().enumerate() {
            let vars = toks.iter().filter(|t| t.contains(WILDCARD)).count();
            bins.entry((toks.len(), vars)).or_default().push(i);
        }
        // Categorize: inside each bin, identical anonymized sequences are one
        // event; then reconcile near-duplicates.
        let mut assignments = vec![0usize; lines.len()];
        let mut templates: Vec<Vec<String>> = Vec::new();
        let mut bin_keys: Vec<(usize, usize)> = bins.keys().copied().collect();
        bin_keys.sort_unstable();
        for key in bin_keys {
            let members = &bins[&key];
            // Exact grouping.
            let mut groups: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
            let mut index: HashMap<&[String], usize> = HashMap::new();
            for &mi in members {
                let toks = &anonymized[mi];
                match index.get(toks.as_slice()) {
                    Some(&gi) => groups[gi].1.push(mi),
                    None => {
                        let gi = groups.len();
                        groups.push((toks.clone(), vec![mi]));
                        index.insert(anonymized[mi].as_slice(), gi);
                    }
                }
            }
            drop(index);
            // Reconcile: union groups differing at exactly one position when
            // enough near-duplicates exist.
            let merged = reconcile(&mut groups, self.config.merge_threshold);
            for (template, group_members) in merged {
                let event_id = templates.len();
                templates.push(template);
                for mi in group_members {
                    assignments[mi] = event_id;
                }
            }
        }
        ParseResult {
            assignments,
            templates: templates.iter().map(|t| t.join(" ")).collect(),
        }
    }
}

/// Merge groups in a bin that differ at exactly one token position, provided
/// at least `threshold` groups share the rest of the template.
fn reconcile(
    groups: &mut Vec<(Vec<String>, Vec<usize>)>,
    threshold: usize,
) -> Vec<(Vec<String>, Vec<usize>)> {
    // Key each group by its tokens with one position masked; count buddies.
    let n = groups.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    if n > 1 {
        let width = groups[0].0.len();
        for pos in 0..width {
            let mut by_masked: HashMap<Vec<&str>, Vec<usize>> = HashMap::new();
            for (gi, (toks, _)) in groups.iter().enumerate() {
                let masked: Vec<&str> = toks
                    .iter()
                    .enumerate()
                    .map(|(i, t)| if i == pos { WILDCARD } else { t.as_str() })
                    .collect();
                by_masked.entry(masked).or_default().push(gi);
            }
            for (_, gis) in by_masked {
                if gis.len() >= threshold && gis.len() > 1 {
                    for w in gis.windows(2) {
                        let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                }
            }
        }
    }
    // Collapse union-find classes.
    let mut classes: HashMap<usize, (Vec<String>, Vec<usize>)> = HashMap::new();
    for gi in 0..n {
        let root = find(&mut parent, gi);
        let (toks, members) = &groups[gi];
        match classes.get_mut(&root) {
            Some((template, all)) => {
                for (t, tok) in template.iter_mut().zip(toks) {
                    if t != tok {
                        *t = WILDCARD.to_string();
                    }
                }
                all.extend(members.iter().copied());
            }
            None => {
                classes.insert(root, (toks.clone(), members.clone()));
            }
        }
    }
    let mut out: Vec<(Vec<String>, Vec<usize>)> = classes.into_values().collect();
    out.sort_by_key(|(_, m)| *m.iter().min().unwrap_or(&usize::MAX));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn anonymize_heuristics() {
        assert_eq!(anonymize("pid=123"), "pid=<*>");
        assert_eq!(anonymize("42"), "<*>");
        assert_eq!(anonymize("3.14"), "<*>");
        assert_eq!(anonymize("blk_4930"), "<*>");
        assert_eq!(anonymize("word"), "word");
        assert_eq!(anonymize("ssh2"), "ssh2"); // mostly letters → kept
    }

    #[test]
    fn kv_and_number_grouping() {
        let r = Ael::new().parse_batch(&lines(&[
            "session opened uid=0 pid=100",
            "session opened uid=1 pid=200",
        ]));
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.templates[0], "session opened uid=<*> pid=<*>");
    }

    #[test]
    fn bins_keep_lengths_apart() {
        let r = Ael::new().parse_batch(&lines(&["a b c", "a b", "a b c"]));
        assert_eq!(r.event_count(), 2);
        assert_eq!(r.assignments[0], r.assignments[2]);
        assert_ne!(r.assignments[0], r.assignments[1]);
    }

    #[test]
    fn reconcile_merges_near_duplicates() {
        // Three groups differing only in the third word → one event after
        // reconcile (threshold 2).
        let r = Ael::new().parse_batch(&lines(&[
            "state changed to active",
            "state changed to idle",
            "state changed to standby",
        ]));
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.templates[0], "state changed to <*>");
    }

    #[test]
    fn reconcile_threshold_blocks_single_pairs() {
        let ael = Ael::with_config(AelConfig { merge_threshold: 3 });
        let r = ael.parse_batch(&lines(&["mode is on", "mode is off"]));
        // Only 2 near-duplicates < threshold 3 → separate events.
        assert_eq!(r.event_count(), 2);
    }

    #[test]
    fn untouched_text_without_variables() {
        let r = Ael::new().parse_batch(&lines(&["shutting down cleanly", "shutting down cleanly"]));
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.templates[0], "shutting down cleanly");
    }
}
