//! The slot-template engine behind the synthetic corpora.
//!
//! Event templates are strings with `<slot>` placeholders, e.g.
//!
//! ```text
//! Accepted password for <user> from <ip> port <port> ssh2
//! ```
//!
//! Each slot kind knows how to generate a random value and whether the
//! LogHub-style *pre-processing* (Zhu et al.'s regex masking of "common
//! fields such as IP address, datetime") would replace it with `<*>`.
//! Word-like fields (user names, host names, enumerated states) are not
//! masked, exactly like the real pre-processed data.

use testkit::rng::Rng;

/// One parsed element of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplatePart {
    /// Verbatim text.
    Literal(String),
    /// A value slot.
    Slot(SlotKind),
}

/// The supported slot kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotKind {
    /// Random integer 0..100000. Masked.
    Int,
    /// Small integer 0..16. Masked.
    SmallInt,
    /// TCP port 1024..65535. Masked.
    Port,
    /// Process id 100..32768. Masked.
    Pid,
    /// Large byte count. Masked.
    Size,
    /// Decimal 0.00..1000.00. Masked.
    Float,
    /// Dotted-quad IPv4. Masked.
    Ip,
    /// `ip:port`. Masked.
    IpPort,
    /// `/ip` with leading slash (HDFS style). Masked.
    SlashIp,
    /// Hex identifier of 8–16 digits. Masked.
    Hex,
    /// MAC address. Masked.
    Mac,
    /// HDFS block id `blk_<digits>` (sometimes negative). Masked.
    Blk,
    /// Duration like `35ms`. Masked.
    Duration,
    /// Numeric uid. Masked.
    Uid,
    /// Proxifier-style flip: integer, or integer followed by `*`
    /// (the paper: "entries of 64 or 64* for the same position"). Masked.
    IntStar,
    /// User name from a fixed pool. NOT masked.
    User,
    /// Host name from a fixed pool. NOT masked.
    Host,
    /// Filesystem path assembled from component pools. NOT masked (no
    /// common regex covers paths — the paper lists paths as a limitation).
    Path,
    /// URL. NOT masked.
    Url,
    /// Version string `x.y.z`. Masked (numeric regex catches it in the real
    /// pre-processing).
    Ver,
    /// One of an enumerated set of values — the *semi-constant* case. NOT
    /// masked.
    Choice(Vec<String>),
    /// A random lowercase word. NOT masked.
    Word,
}

impl SlotKind {
    /// Would the LogHub pre-processing replace this value with `<*>`?
    pub fn masked(&self) -> bool {
        !matches!(
            self,
            SlotKind::User
                | SlotKind::Host
                | SlotKind::Path
                | SlotKind::Url
                | SlotKind::Choice(_)
                | SlotKind::Word
        )
    }

    /// Generate one value.
    pub fn generate(&self, rng: &mut Rng) -> String {
        match self {
            SlotKind::Int => rng.gen_range(0..100_000).to_string(),
            SlotKind::SmallInt => rng.gen_range(0..16).to_string(),
            SlotKind::Port => rng.gen_range(1024..65536).to_string(),
            SlotKind::Pid => rng.gen_range(100..32768).to_string(),
            SlotKind::Size => rng.gen_range(1_000..2_000_000_000u64).to_string(),
            SlotKind::Float => format!("{:.2}", rng.gen_range(0.0..1000.0)),
            SlotKind::Ip => format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..240),
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(1..255)
            ),
            SlotKind::IpPort => format!(
                "{}:{}",
                SlotKind::Ip.generate(rng),
                rng.gen_range(1024..65536)
            ),
            SlotKind::SlashIp => format!("/{}", SlotKind::Ip.generate(rng)),
            SlotKind::Hex => {
                let len = 8 + 2 * rng.gen_range(0..5usize);
                let mut s = String::with_capacity(len);
                // Guarantee at least one digit and one letter so the
                // Sequence hex FSM recognises it.
                s.push(char::from(b'0' + rng.gen_range(0..10u8)));
                s.push(char::from(b'a' + rng.gen_range(0..6u8)));
                for _ in 2..len {
                    let v = rng.gen_range(0..16u8);
                    s.push(char::from_digit(v as u32, 16).unwrap());
                }
                s
            }
            SlotKind::Mac => {
                let mut parts = Vec::with_capacity(6);
                for _ in 0..6 {
                    parts.push(format!("{:02x}", rng.gen_range(0..256)));
                }
                parts.join(":")
            }
            SlotKind::Blk => {
                let sign = if rng.gen_bool(0.3) { "-" } else { "" };
                format!(
                    "blk_{sign}{}",
                    rng.gen_range(1_000_000_000u64..9_999_999_999_999u64)
                )
            }
            SlotKind::Duration => format!("{}ms", rng.gen_range(1..90_000)),
            SlotKind::Uid => rng.gen_range(0..60_000).to_string(),
            SlotKind::IntStar => {
                let n = rng.gen_range(16..8192);
                if rng.gen_bool(0.5) {
                    format!("{n}*")
                } else {
                    n.to_string()
                }
            }
            SlotKind::User => pick(rng, USERS).to_string(),
            SlotKind::Host => {
                format!("{}{:02}", pick(rng, HOST_PREFIXES), rng.gen_range(0..40))
            }
            SlotKind::Path => {
                let depth = rng.gen_range(2..5usize);
                let mut p = String::new();
                for _ in 0..depth {
                    p.push('/');
                    p.push_str(pick(rng, PATH_COMPONENTS));
                }
                if rng.gen_bool(0.5) {
                    p.push('.');
                    p.push_str(pick(rng, PATH_EXTS));
                }
                p
            }
            SlotKind::Url => format!(
                "https://{}{:02}.example.org/{}?id={}",
                pick(rng, HOST_PREFIXES),
                rng.gen_range(0..40),
                pick(rng, PATH_COMPONENTS),
                rng.gen_range(0..10_000)
            ),
            SlotKind::Ver => format!(
                "{}.{}.{}",
                rng.gen_range(0..5),
                rng.gen_range(0..20),
                rng.gen_range(0..40)
            ),
            SlotKind::Choice(options) => options[rng.gen_range(0..options.len())].clone(),
            SlotKind::Word => pick(rng, WORDS).to_string(),
        }
    }

    /// Parse a slot spec (the text between `<` and `>`).
    pub fn parse(spec: &str) -> Option<SlotKind> {
        if let Some(rest) = spec.strip_prefix("choice:") {
            let options: Vec<String> = rest.split('|').map(|s| s.to_string()).collect();
            if options.is_empty() {
                return None;
            }
            return Some(SlotKind::Choice(options));
        }
        Some(match spec {
            "int" => SlotKind::Int,
            "smallint" => SlotKind::SmallInt,
            "port" => SlotKind::Port,
            "pid" => SlotKind::Pid,
            "size" => SlotKind::Size,
            "float" => SlotKind::Float,
            "ip" => SlotKind::Ip,
            "ipport" => SlotKind::IpPort,
            "slaship" => SlotKind::SlashIp,
            "hex" => SlotKind::Hex,
            "mac" => SlotKind::Mac,
            "blk" => SlotKind::Blk,
            "duration" => SlotKind::Duration,
            "uid" => SlotKind::Uid,
            "intstar" => SlotKind::IntStar,
            "user" => SlotKind::User,
            "host" => SlotKind::Host,
            "path" => SlotKind::Path,
            "url" => SlotKind::Url,
            "ver" => SlotKind::Ver,
            "word" => SlotKind::Word,
            _ => return None,
        })
    }
}

fn pick<'a>(rng: &mut Rng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

const USERS: &[&str] = &[
    "root", "admin", "guest", "alice", "bob", "carol", "deploy", "www", "backup", "postgres",
    "oracle", "test", "jenkins", "nagios",
];
const HOST_PREFIXES: &[&str] = &["node", "worker", "db", "cache", "edge", "compute", "login"];
const PATH_COMPONENTS: &[&str] = &[
    "var", "log", "data", "tmp", "opt", "usr", "srv", "home", "etc", "spool", "cache", "lib",
    "jobs", "scratch", "blocks",
];
const PATH_EXTS: &[&str] = &["log", "txt", "dat", "conf", "tmp", "jar"];
const WORDS: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
    "kilo", "lima",
];

/// Parse a template string into parts. Unknown slots are kept as literals
/// (so authoring typos fail loudly in tests rather than silently).
pub fn parse_template(template: &str) -> Vec<TemplatePart> {
    let mut parts = Vec::new();
    let mut rest = template;
    while let Some(open) = rest.find('<') {
        let close = match rest[open..].find('>') {
            Some(c) => open + c,
            None => break,
        };
        let spec = &rest[open + 1..close];
        match SlotKind::parse(spec) {
            Some(slot) => {
                if open > 0 {
                    parts.push(TemplatePart::Literal(rest[..open].to_string()));
                }
                parts.push(TemplatePart::Slot(slot));
                rest = &rest[close + 1..];
            }
            None => {
                // Not a slot (e.g. literal `<*>` or `<errors>`); keep the
                // `<` and continue after it.
                parts.push(TemplatePart::Literal(rest[..open + 1].to_string()));
                rest = &rest[open + 1..];
            }
        }
    }
    if !rest.is_empty() {
        parts.push(TemplatePart::Literal(rest.to_string()));
    }
    parts
}

/// Instantiate a template: `(raw content, pre-processed content)`.
pub fn instantiate(parts: &[TemplatePart], rng: &mut Rng) -> (String, String) {
    let mut raw = String::new();
    let mut pre = String::new();
    for p in parts {
        match p {
            TemplatePart::Literal(t) => {
                raw.push_str(t);
                pre.push_str(t);
            }
            TemplatePart::Slot(slot) => {
                let v = slot.generate(rng);
                raw.push_str(&v);
                if slot.masked() {
                    // LogHub masking is regex-based on the *digits*: the `*`
                    // decoration of Proxifier's `64*` values survives
                    // pre-processing (`<*>*`), which is why the paper's
                    // Proxifier accuracy drops even on pre-processed data.
                    if matches!(slot, SlotKind::IntStar) && v.ends_with('*') {
                        pre.push_str("<*>*");
                    } else {
                        pre.push_str("<*>");
                    }
                } else {
                    pre.push_str(&v);
                }
            }
        }
    }
    (raw, pre)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(7)
    }

    #[test]
    fn parse_and_instantiate() {
        let parts = parse_template("Accepted password for <user> from <ip> port <port> ssh2");
        assert_eq!(parts.len(), 7);
        let (raw, pre) = instantiate(&parts, &mut rng());
        assert!(raw.starts_with("Accepted password for "));
        assert!(raw.ends_with(" ssh2"));
        // IP and port masked, user not.
        assert_eq!(pre.matches("<*>").count(), 2);
    }

    #[test]
    fn unknown_slot_stays_literal() {
        let parts = parse_template("found <errors> in <int> files");
        let (raw, _) = instantiate(&parts, &mut rng());
        assert!(raw.contains("<errors>"));
        assert!(!raw.contains("<int>"));
    }

    #[test]
    fn choice_slot() {
        let parts = parse_template("link <choice:up|down> on eth0");
        let mut seen = std::collections::HashSet::new();
        let mut r = rng();
        for _ in 0..50 {
            let (raw, pre) = instantiate(&parts, &mut r);
            assert!(raw.contains("up") || raw.contains("down"));
            assert_eq!(raw, pre, "choice values are not masked");
            seen.insert(raw);
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn generated_values_have_expected_shapes() {
        let mut r = rng();
        for _ in 0..30 {
            let ip = SlotKind::Ip.generate(&mut r);
            assert_eq!(ip.split('.').count(), 4);
            let mac = SlotKind::Mac.generate(&mut r);
            assert_eq!(mac.split(':').count(), 6);
            let blk = SlotKind::Blk.generate(&mut r);
            assert!(blk.starts_with("blk_"));
            let hex = SlotKind::Hex.generate(&mut r);
            assert!(hex.len() >= 8 && hex.bytes().all(|b| b.is_ascii_hexdigit()));
            let path = SlotKind::Path.generate(&mut r);
            assert!(path.starts_with('/'));
        }
    }

    #[test]
    fn intstar_flips() {
        let mut r = rng();
        let mut star = 0;
        let mut plain = 0;
        for _ in 0..100 {
            if SlotKind::IntStar.generate(&mut r).ends_with('*') {
                star += 1;
            } else {
                plain += 1;
            }
        }
        assert!(
            star > 20 && plain > 20,
            "both variants occur: {star}/{plain}"
        );
    }

    #[test]
    fn determinism_with_same_seed() {
        let parts = parse_template("x <int> y <ip> z <hex>");
        let a = instantiate(&parts, &mut Rng::seed_from_u64(99));
        let b = instantiate(&parts, &mut Rng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn every_named_slot_parses() {
        for name in [
            "int", "smallint", "port", "pid", "size", "float", "ip", "ipport", "slaship", "hex",
            "mac", "blk", "duration", "uid", "intstar", "user", "host", "path", "url", "ver",
            "word",
        ] {
            assert!(SlotKind::parse(name).is_some(), "{name}");
        }
        assert!(SlotKind::parse("choice:a|b").is_some());
        assert!(SlotKind::parse("bogus").is_none());
    }
}
