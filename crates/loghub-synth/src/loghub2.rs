//! Statistically faithful generators for the 14 LogHub-2.0 dataset
//! families (Jiang et al., ISSTA 2024: 50.4M annotated messages).
//!
//! Where [`crate::datasets`] reproduces the 2k-line LogHub *samples* used by
//! the paper's Tables II/III, this module scales each family to its
//! LogHub-2.0 shape:
//!
//! * **Template count** matches the published catalog (HDFS 46 through
//!   Thunderbird 1,241). The hand-authored templates of
//!   [`crate::datasets`] anchor the head of each catalog; the remainder is
//!   synthesized deterministically from a per-family vocabulary extracted
//!   from those anchors, so a synthesized OpenStack template talks about
//!   instances and hypervisors, not DHCP leases.
//! * **Variable-slot cardinalities** mix unbounded kinds (integers, hex
//!   ids, addresses) with bounded `choice` pools of 2–32 values — the
//!   semi-constant positions that separate a good parser from a
//!   number-masker.
//! * **Template frequency skew** follows a per-family Zipf law: a few head
//!   events dominate (HDFS block chatter), with a long near-singleton tail
//!   (Linux, Thunderbird), sampled in O(log T) per line.
//! * **Ground truth** labels ride on every line ([`LabeledLine::event`]),
//!   exactly like the `datasets` generators.
//! * **Streaming emission**: [`FamilyStream`] is an [`Iterator`] that
//!   derives each line from a single sequential RNG — no full-corpus
//!   buffering, so multi-million-line corpora generate in constant memory,
//!   and drawing the stream in chunks of any size yields byte-identical
//!   output.
//!
//! The template catalog of a family is a fixed property of the family (it
//! does not depend on the stream seed), mirroring how the real annotated
//! template sets are frozen artifacts; the seed only drives line sampling.
//!
//! ```
//! use loghub_synth::loghub2::{self, LOGHUB2_FAMILIES};
//!
//! assert_eq!(LOGHUB2_FAMILIES.len(), 14);
//! let profile = loghub2::profile("HDFS");
//! assert_eq!(profile.templates, 46);
//! let lines: Vec<_> = loghub2::stream("HDFS", 100, 1).collect();
//! assert_eq!(lines.len(), 100);
//! assert!(lines.iter().all(|l| l.event.starts_with('E')));
//! ```

use crate::datasets::{hash_name, spec, Header, LabeledLine};
use crate::slots::{instantiate, parse_template, TemplatePart};
use std::collections::HashSet;
use testkit::rng::Rng;

/// The 14 LogHub-2.0 families, in the paper's Table II order (LogHub-2.0
/// drops Windows and Android from the original sixteen).
pub const LOGHUB2_FAMILIES: [&str; 14] = [
    "HDFS",
    "Hadoop",
    "Spark",
    "Zookeeper",
    "OpenStack",
    "BGL",
    "HPC",
    "Thunderbird",
    "Linux",
    "Mac",
    "HealthApp",
    "Apache",
    "OpenSSH",
    "Proxifier",
];

/// Published shape of one LogHub-2.0 family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyProfile {
    /// Family (service) name.
    pub name: &'static str,
    /// Annotated message count in LogHub-2.0.
    pub published_lines: u64,
    /// Annotated template count in LogHub-2.0 — the size of the generated
    /// catalog.
    pub templates: usize,
    /// Zipf exponent of the template frequency distribution (higher =
    /// heavier head, longer near-singleton tail).
    pub zipf_s: f64,
}

/// The published profile of a family. Panics on unknown names (same policy
/// as [`crate::generate`]).
pub fn profile(name: &str) -> FamilyProfile {
    let (published_lines, templates, zipf_s) = match name {
        "HDFS" => (11_167_740, 46, 1.0),
        "Hadoop" => (179_993, 236, 1.1),
        "Spark" => (16_075_117, 236, 1.1),
        "Zookeeper" => (74_273, 89, 1.0),
        "OpenStack" => (207_632, 48, 0.9),
        "BGL" => (4_631_261, 320, 1.2),
        "HPC" => (429_987, 74, 1.0),
        "Thunderbird" => (16_601_745, 1_241, 1.3),
        "Linux" => (23_921, 338, 1.3),
        "Mac" => (117_283, 341, 1.2),
        "HealthApp" => (212_394, 156, 1.1),
        "Apache" => (51_977, 29, 1.0),
        "OpenSSH" => (638_946, 38, 0.9),
        "Proxifier" => (21_320, 11, 0.8),
        other => panic!("unknown LogHub-2.0 family {other}"),
    };
    let name = LOGHUB2_FAMILIES
        .iter()
        .find(|n| **n == name)
        .expect("profiled name is canonical");
    FamilyProfile {
        name,
        published_lines,
        templates,
        zipf_s,
    }
}

/// One catalog entry: ground-truth event id, parsed template, cumulative
/// sampling weight (exclusive upper bound).
struct CatalogEvent {
    event: String,
    parts: Vec<TemplatePart>,
}

/// A family's frozen template catalog with its Zipf sampling table.
pub struct Catalog {
    profile: FamilyProfile,
    header: Header,
    events: Vec<CatalogEvent>,
    /// `cum[i]` = total weight of events `0..=i`; sampled by binary search.
    cum: Vec<u64>,
}

impl Catalog {
    /// Number of templates in the catalog (equals
    /// [`FamilyProfile::templates`]).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the catalog is empty (never, for known families).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The profile this catalog was built from.
    pub fn profile(&self) -> FamilyProfile {
        self.profile
    }
}

/// Fixed internal seed for catalog synthesis: the catalog is a property of
/// the family, independent of the caller's stream seed.
const CATALOG_SEED: u64 = 0x4c4f_4748_5542_3230; // "LOGHUB20"

/// Build (or rebuild — it is deterministic) the template catalog for a
/// family: anchors from [`crate::datasets`] first, synthesized templates to
/// the published count after, Zipf weights by rank.
pub fn catalog(name: &str) -> Catalog {
    let p = profile(name);
    let s = spec(p.name);
    let mut templates: Vec<String> = s.events.iter().map(|e| e.template.to_string()).collect();
    assert!(
        templates.len() <= p.templates,
        "{name}: more anchors than published templates"
    );
    let vocab = family_vocabulary(&templates);
    let mut seen: HashSet<String> = templates.iter().cloned().collect();
    let mut rng = Rng::seed_from_u64(CATALOG_SEED ^ hash_name(p.name));
    while templates.len() < p.templates {
        let t = synthesize_template(&mut rng, &vocab);
        if seen.insert(t.clone()) {
            templates.push(t);
        }
    }
    let events: Vec<CatalogEvent> = templates
        .iter()
        .enumerate()
        .map(|(i, t)| CatalogEvent {
            event: format!("E{}", i + 1),
            parts: parse_template(t),
        })
        .collect();
    // Zipf weights by catalog rank: w_r = 1e6 / (r+1)^s, floored at 1 so
    // every template in the tail remains reachable.
    let mut cum = Vec::with_capacity(events.len());
    let mut total = 0u64;
    for r in 0..events.len() {
        let w = (1_000_000.0 / ((r + 1) as f64).powf(p.zipf_s)).max(1.0) as u64;
        total += w;
        cum.push(total);
    }
    Catalog {
        profile: p,
        header: s.header,
        events,
        cum,
    }
}

/// Literal vocabulary of a family: the alphabetic words of its anchor
/// templates (so synthesized templates speak the family's dialect).
fn family_vocabulary(anchors: &[String]) -> Vec<String> {
    let mut vocab: Vec<String> = Vec::new();
    let mut seen = HashSet::new();
    for t in anchors {
        for word in t.split_whitespace() {
            let w: String = word
                .chars()
                .filter(|c| c.is_ascii_alphabetic())
                .collect::<String>()
                .to_lowercase();
            if w.len() >= 3 && seen.insert(w.clone()) {
                vocab.push(w);
            }
        }
    }
    // Pad tiny vocabularies (Apache, Proxifier) so synthesis never starves.
    for w in [
        "request", "worker", "buffer", "client", "timeout", "retry", "status", "config", "thread",
        "queue", "commit", "update",
    ] {
        if seen.insert(w.to_string()) {
            vocab.push(w.to_string());
        }
    }
    vocab
}

/// High-cardinality slot palette for synthesized templates (the existing
/// template DSL of [`crate::slots`]).
const SLOT_PALETTE: &[&str] = &[
    "int", "int", "int", "hex", "hex", "smallint", "float", "port", "ip", "ipport", "path", "host",
    "size", "duration", "pid",
];

/// Synthesize one template string: a literal head word, then a mix of
/// family-vocabulary literals, unbounded slots, bounded `choice` pools
/// (cardinality 2–32), and `key=<slot>` fused pairs.
fn synthesize_template(rng: &mut Rng, vocab: &[String]) -> String {
    let word = |rng: &mut Rng| vocab[rng.gen_range(0..vocab.len())].clone();
    let len = 3 + rng.gen_range(0..10usize);
    let mut out = String::new();
    for pos in 0..len {
        if pos > 0 {
            out.push(' ');
        }
        if pos == 0 {
            // Head token: always a literal (real templates start with a
            // verb or component name, and it keeps heads discriminative).
            let mut w = word(rng);
            if rng.gen_bool(0.3) {
                // Capitalise some heads ("Received", "Starting").
                let mut c = w.chars();
                if let Some(f) = c.next() {
                    w = f.to_uppercase().collect::<String>() + c.as_str();
                }
            }
            out.push_str(&w);
            continue;
        }
        let roll = rng.gen_range(0..100u32);
        if roll < 50 {
            out.push_str(&word(rng));
        } else if roll < 68 {
            // Unbounded (or near-unbounded) variable slot.
            out.push('<');
            out.push_str(SLOT_PALETTE[rng.gen_range(0..SLOT_PALETTE.len())]);
            out.push('>');
        } else if roll < 82 {
            // Bounded-cardinality slot: a choice pool of 2..=32 values.
            let k = [2usize, 2, 3, 3, 4, 6, 8, 12, 16, 24, 32][rng.gen_range(0..11usize)];
            let mut options = Vec::with_capacity(k);
            let mut opt_seen = HashSet::new();
            while options.len() < k {
                let o = format!("{}{}", word(rng), rng.gen_range(0..100u32));
                if opt_seen.insert(o.clone()) {
                    options.push(o);
                }
            }
            out.push_str("<choice:");
            out.push_str(&options.join("|"));
            out.push('>');
        } else if roll < 92 {
            // key=<slot> fused pair (tokenises as one mixed token).
            out.push_str(&word(rng));
            out.push('=');
            out.push('<');
            out.push_str(["int", "hex", "smallint", "float"][rng.gen_range(0..4usize)]);
            out.push('>');
        } else {
            // Punctuated literal ("slot:", "[done]").
            let w = word(rng);
            if rng.gen_bool(0.5) {
                out.push_str(&w);
                out.push(':');
            } else {
                out.push('[');
                out.push_str(&w);
                out.push(']');
            }
        }
    }
    out
}

/// A streaming corpus generator for one family: yields labelled lines one
/// at a time from a single sequential RNG. Collecting the whole iterator,
/// or draining it in chunks of any size, produces byte-identical output.
pub struct FamilyStream {
    catalog: Catalog,
    rng: Rng,
    remaining: usize,
}

impl FamilyStream {
    /// Lines left to emit.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The catalog backing this stream.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl Iterator for FamilyStream {
    type Item = LabeledLine;

    fn next(&mut self) -> Option<LabeledLine> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let total = *self.catalog.cum.last().expect("non-empty catalog");
        let pick = self.rng.gen_range(0..total);
        let ei = self.catalog.cum.partition_point(|&c| c <= pick);
        let ev = &self.catalog.events[ei];
        let (content, preprocessed) = instantiate(&ev.parts, &mut self.rng);
        let header = self.catalog.header.generate(&mut self.rng);
        Some(LabeledLine {
            raw: format!("{header}{content}"),
            content,
            preprocessed,
            event: ev.event.clone(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for FamilyStream {}

/// Stream `n` labelled lines of a family with a deterministic seed.
pub fn stream(name: &str, n: usize, seed: u64) -> FamilyStream {
    let catalog = catalog(name);
    let rng = Rng::seed_from_u64(seed ^ hash_name(catalog.profile.name) ^ CATALOG_SEED);
    FamilyStream {
        catalog,
        rng,
        remaining: n,
    }
}

/// Convenience: collect a stream into a [`crate::Dataset`] (for the
/// accuracy harness, which scores bounded samples).
pub fn dataset(name: &str, n: usize, seed: u64) -> crate::Dataset {
    let mut s = stream(name, n, seed);
    let lines: Vec<LabeledLine> = s.by_ref().collect();
    crate::Dataset {
        name: s.catalog.profile.name,
        lines,
        event_count: s.catalog.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn all_fourteen_catalogs_match_published_template_counts() {
        for name in LOGHUB2_FAMILIES {
            let c = catalog(name);
            assert_eq!(c.len(), profile(name).templates, "{name}");
            assert!(!c.is_empty());
            // Catalog templates are mutually distinct renders.
            let renders: HashSet<String> = c
                .events
                .iter()
                .map(|e| {
                    e.parts
                        .iter()
                        .map(|p| format!("{p:?}"))
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            assert_eq!(renders.len(), c.len(), "{name}: duplicate templates");
        }
    }

    #[test]
    fn catalog_is_independent_of_stream_seed() {
        let a: Vec<String> = catalog("Thunderbird")
            .events
            .iter()
            .map(|e| e.event.clone())
            .collect();
        let b: Vec<String> = catalog("Thunderbird")
            .events
            .iter()
            .map(|e| e.event.clone())
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1_241);
    }

    #[test]
    fn stream_yields_exactly_n_labelled_lines() {
        let lines: Vec<LabeledLine> = stream("HDFS", 5_000, 3).collect();
        assert_eq!(lines.len(), 5_000);
        for l in &lines {
            let idx: usize = l.event[1..].parse().unwrap();
            assert!(idx >= 1 && idx <= 46, "{}", l.event);
            assert!(l.raw.ends_with(&l.content));
        }
    }

    #[test]
    fn zipf_head_dominates_tail() {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for l in stream("BGL", 30_000, 5) {
            *counts.entry(l.event).or_insert(0) += 1;
        }
        let head = counts.get("E1").copied().unwrap_or(0);
        // The whole second half of the 320-template catalog together.
        let tail: usize = (160..=320)
            .map(|i| counts.get(&format!("E{i}")).copied().unwrap_or(0))
            .sum();
        assert!(
            head > tail,
            "Zipf skew: head E1 ({head}) should outweigh the entire tail half ({tail})"
        );
    }

    #[test]
    fn long_tail_families_surface_many_distinct_events() {
        let distinct: HashSet<String> = stream("Thunderbird", 20_000, 7).map(|l| l.event).collect();
        assert!(
            distinct.len() > 150,
            "Thunderbird sample should touch a wide catalog: {}",
            distinct.len()
        );
    }

    #[test]
    fn chunked_draw_equals_full_draw() {
        let full: Vec<LabeledLine> = stream("OpenSSH", 400, 11).collect();
        let mut chunked = Vec::new();
        let mut s = stream("OpenSSH", 400, 11);
        loop {
            let chunk: Vec<LabeledLine> = s.by_ref().take(37).collect();
            if chunk.is_empty() {
                break;
            }
            chunked.extend(chunk);
        }
        assert_eq!(full, chunked);
    }

    #[test]
    fn bounded_choice_slots_survive_preprocessing() {
        // Synthesized catalogs carry bounded choice pools; their values are
        // semi-constants and must not be masked to <*>.
        let c = catalog("Apache");
        let has_choice = c.events.iter().any(|e| {
            e.parts
                .iter()
                .any(|p| matches!(p, TemplatePart::Slot(crate::slots::SlotKind::Choice(_))))
        });
        assert!(
            has_choice,
            "synthesized Apache templates include choice pools"
        );
    }

    #[test]
    fn dataset_convenience_matches_stream() {
        let d = dataset("Proxifier", 200, 9);
        assert_eq!(d.lines.len(), 200);
        assert_eq!(d.event_count, 11);
        let s: Vec<LabeledLine> = stream("Proxifier", 200, 9).collect();
        assert_eq!(d.lines, s);
    }
}
