//! # loghub-synth
//!
//! Synthetic, label-faithful stand-ins for the LogHub datasets used in the
//! Sequence-RTG paper's accuracy evaluation (Tables II and III), plus the
//! multi-service composite stream for the performance experiments (Fig. 5)
//! and the production simulation (Fig. 7).
//!
//! The real LogHub corpora cannot ship with this repository; these
//! generators reproduce the per-service log formats, header styles, event
//! frequency skews, and — crucially — the failure-mode features the paper's
//! analysis hinges on (HealthApp's zero-less timestamps, Proxifier's
//! `64`/`64*` type flip, long tails of rare events, filesystem paths). See
//! DESIGN.md §2 for the substitution rationale.
//!
//! ```
//! use loghub_synth::{generate, DATASET_NAMES};
//!
//! let d = generate("OpenSSH", 2000, 1);
//! assert_eq!(d.lines.len(), 2000);
//! assert!(DATASET_NAMES.contains(&d.name));
//! // Every line carries its ground-truth event label.
//! assert!(d.lines.iter().all(|l| l.event.starts_with('E')));
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod datasets;
pub mod loghub2;
pub mod slots;

pub use corpus::{generate_stream, to_json_lines, CorpusConfig, StreamItem};
pub use datasets::{generate, Dataset, LabeledLine, DATASET_NAMES};
