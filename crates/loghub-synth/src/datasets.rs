//! Synthetic stand-ins for the 16 LogHub datasets used in the paper's
//! Tables II and III.
//!
//! The real LogHub files are not redistributable inside this repository, so
//! each dataset here is a *label-faithful synthetic corpus*: a set of event
//! templates (modelled on the published per-service log formats) with
//! weights, realistic per-service headers for the raw variant, and the
//! LogHub-style masked variant for the pre-processed runs. Every line
//! carries its ground-truth event id, exactly like the hand-labelled CSVs of
//! Zhu et al.
//!
//! The generators deliberately reproduce the *failure-mode features* the
//! paper analyses:
//!
//! * **HealthApp** — `|`-separated headers whose timestamps lack leading
//!   zeros (`20171224-0:7:20:444`), which the default Sequence datetime FSM
//!   cannot recognise (§IV Limitations);
//! * **Proxifier** — a byte-count field that is sometimes `64` and sometimes
//!   `64*`, flipping between integer and literal token types and splitting
//!   one event into two patterns;
//! * **Linux / Mac** — long tails of rare events, including singletons;
//! * several services with filesystem paths (the paper's path limitation).

use crate::slots::{instantiate, parse_template, TemplatePart};
use testkit::rng::Rng;

/// One labelled synthetic log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledLine {
    /// The full raw message (header + content), as a production stream
    /// would carry it.
    pub raw: String,
    /// The content part only (no header), unmasked.
    pub content: String,
    /// The content with LogHub-style masking (`<*>` for common fields).
    pub preprocessed: String,
    /// Ground-truth event id (`E1`, `E2`, ...).
    pub event: String,
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Service name (doubles as the Sequence-RTG `service` field).
    pub name: &'static str,
    /// The labelled lines.
    pub lines: Vec<LabeledLine>,
    /// Number of distinct event templates in the spec.
    pub event_count: usize,
}

/// Header styles for the raw variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Header {
    /// `Jun 14 15:16:01 combo sshd[19939]: `
    Syslog(&'static str),
    /// `081109 203615 148 INFO dfs.DataNode$PacketResponder: `
    Hdfs,
    /// `2015-10-18 18:01:47,978 INFO [main] org.apache.hadoop.mapred.Task: `
    Hadoop,
    /// `17/06/09 20:10:40 INFO executor.Executor: `
    Spark,
    /// `2015-07-29 17:41:41,648 - INFO [QuorumPeer@913] - `
    Zookeeper,
    /// `2017-05-16 00:00:04.500 2931 INFO nova.compute.manager `
    OpenStack,
    /// `1117838570 2005.06.03 R02-M1 RAS KERNEL INFO `
    Bgl,
    /// `2558 node-246 unix.hw state_change.unavailable 1084680778 1 `
    Hpc,
    /// `2016-09-28 04:30:30, Info                  CBS    `
    Windows,
    /// `03-17 16:13:38.811  1702  2395 D WindowManager: `
    Android,
    /// `20171223-22:15:29:606|Step_LSC|30002312|` — no leading zeros!
    HealthApp,
    /// `[Thu Jun 09 06:07:04 2005] [notice] `
    Apache,
    /// `[10.30 16:49:06] chrome.exe - `
    Proxifier,
}

const MONTHS: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAYS: &[&str] = &["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

impl Header {
    pub(crate) fn generate(self, rng: &mut Rng) -> String {
        let h = rng.gen_range(0..24u32);
        let mi = rng.gen_range(0..60u32);
        let s = rng.gen_range(0..60u32);
        let ms = rng.gen_range(0..1000u32);
        let mon = MONTHS[rng.gen_range(0..12usize)];
        let dom = rng.gen_range(1..29u32);
        match self {
            Header::Syslog(prog) => {
                let host = ["combo", "LabSZ", "authorMacBook-Pro", "tbird-admin1"]
                    [rng.gen_range(0..4usize)];
                format!(
                    "{mon} {dom:2} {h:02}:{mi:02}:{s:02} {host} {prog}[{}]: ",
                    rng.gen_range(100..32000)
                )
            }
            Header::Hdfs => format!(
                "0811{dom:02} {h:02}{mi:02}{s:02} {} INFO dfs.DataNode$PacketResponder: ",
                rng.gen_range(1..4000)
            ),
            Header::Hadoop => format!(
                "2015-10-{dom:02} {h:02}:{mi:02}:{s:02},{ms:03} INFO [main] org.apache.hadoop.mapred.Task: "
            ),
            Header::Spark => {
                format!("17/06/{dom:02} {h:02}:{mi:02}:{s:02} INFO executor.Executor: ")
            }
            Header::Zookeeper => format!(
                "2015-07-{dom:02} {h:02}:{mi:02}:{s:02},{ms:03} - INFO  [QuorumPeer@{}] - ",
                rng.gen_range(100..1200)
            ),
            Header::OpenStack => format!(
                "2017-05-{dom:02} {h:02}:{mi:02}:{s:02}.{ms:03} {} INFO nova.compute.manager ",
                rng.gen_range(1000..30000)
            ),
            Header::Bgl => format!(
                "- 111783{} 2005.06.{dom:02} R{:02}-M{}-N{}-C:J{:02}-U{:02} RAS KERNEL INFO ",
                rng.gen_range(1000..9999),
                rng.gen_range(0..64),
                rng.gen_range(0..2),
                rng.gen_range(0..16),
                rng.gen_range(0..36),
                rng.gen_range(0..18),
            ),
            Header::Hpc => format!(
                "{} node-{} unix.hw state_change.unavailable {} 1 ",
                rng.gen_range(1000..9999),
                rng.gen_range(0..1024),
                rng.gen_range(1_084_000_000..1_085_000_000u64),
            ),
            Header::Windows => {
                format!("2016-09-{dom:02} {h:02}:{mi:02}:{s:02}, Info                  CBS    ")
            }
            Header::Android => format!(
                "03-{dom:02} {h:02}:{mi:02}:{s:02}.{ms:03}  {}  {} D WindowManager: ",
                rng.gen_range(1000..3000),
                rng.gen_range(1000..3000),
            ),
            Header::HealthApp => {
                // The documented limitation: time parts WITHOUT leading
                // zeros (`20171224-0:7:20:444`).
                let comp = ["Step_LSC", "Step_SPUtils", "Step_StandReportReceiver"]
                    [rng.gen_range(0..3usize)];
                format!("201712{dom:02}-{h}:{mi}:{s}:{ms}|{comp}|{}|", rng.gen_range(30_000_000..40_000_000))
            }
            Header::Apache => {
                let day = DAYS[rng.gen_range(0..7usize)];
                format!("[{day} {mon} {dom:02} {h:02}:{mi:02}:{s:02} 2005] [notice] ")
            }
            Header::Proxifier => {
                format!("[{:02}.{dom:02} {h:02}:{mi:02}:{s:02}] chrome.exe - ", rng.gen_range(1..13))
            }
        }
    }
}

/// One event template with its relative frequency.
pub(crate) struct EventSpec {
    pub(crate) template: &'static str,
    pub(crate) weight: u32,
}

macro_rules! events {
    ($(($w:expr, $t:expr)),* $(,)?) => {
        vec![$(EventSpec { template: $t, weight: $w }),*]
    };
}

pub(crate) struct ServiceSpec {
    pub(crate) name: &'static str,
    pub(crate) header: Header,
    pub(crate) events: Vec<EventSpec>,
}

/// The sixteen dataset names, in the paper's Table II order.
pub const DATASET_NAMES: [&str; 16] = [
    "HDFS",
    "Hadoop",
    "Spark",
    "Zookeeper",
    "OpenStack",
    "BGL",
    "HPC",
    "Thunderbird",
    "Windows",
    "Linux",
    "Mac",
    "Android",
    "HealthApp",
    "Apache",
    "OpenSSH",
    "Proxifier",
];

pub(crate) fn spec(name: &str) -> ServiceSpec {
    match name {
        "HDFS" => ServiceSpec {
            name: "HDFS",
            header: Header::Hdfs,
            events: events![
                (500, "Receiving block <blk> src: <slaship>:<port> dest: <slaship>:<port>"),
                (450, "PacketResponder <smallint> for block <blk> terminating"),
                (430, "Received block <blk> of size <size> from <slaship>"),
                (300, "BLOCK* NameSystem.addStoredBlock: blockMap updated: <ipport> is added to <blk> size <size>"),
                (200, "BLOCK* NameSystem.allocateBlock: <path> <blk>"),
                (120, "Verification succeeded for <blk>"),
                (90, "Deleting block <blk> file <path>"),
                (70, "BLOCK* ask <ipport> to replicate <blk> to datanode(s) <ipport>"),
                (50, "Starting thread to transfer block <blk> to <ipport>"),
                (30, "Received block <blk> src: <slaship>:<port> dest: <slaship>:<port> of size <size>"),
                (20, "writeBlock <blk> received exception java.io.IOException: Connection reset by peer"),
                (10, "PendingReplicationMonitor timed out block <blk>"),
                (6, "Unexpected error trying to delete block <blk>. BlockInfo not found in volumeMap."),
                (3, "Changing block file offset of block <blk> from <int> to <int> meta file offset to <int>"),
                (2, "Exception in receiveBlock for block <blk> java.io.IOException: Connection reset by peer"),
                (2, "Receiving empty packet for block <blk>"),
                (1, "Adding an already existing block <blk>"),
                (1, "Error recovering block <blk> to mirror <ipport>"),
            ],
        },
        "Hadoop" => ServiceSpec {
            name: "Hadoop",
            header: Header::Hadoop,
            events: events![
                (320, "Progress of TaskAttempt attempt_<int>_<smallint>_m_<int>_<smallint> is : <float>"),
                (260, "Task 'attempt_<int>_<smallint>_m_<int>_<smallint>' done."),
                (200, "Processing split: hdfs://<host>:<port><path>:<int>+<int>"),
                (170, "Saved output of task 'attempt_<int>_<smallint>_m_<int>_<smallint>' to <path>"),
                (150, "reduce > copy (<int> of <int> at <float> MB/s)"),
                (120, "Starting flush of map output"),
                (110, "Finished spill <smallint>"),
                (90, "map <int>% reduce <int>%"),
                (70, "Merging <smallint> sorted segments"),
                (60, "Adding task 'attempt_<int>_<smallint>_r_<int>_<smallint>' to tip task_<int>_<smallint>"),
                (40, "Failed to renew lease for [DFSClient_NONMAPREDUCE_<int>_<smallint>] for <int> seconds. Will retry shortly."),
                (30, "Address change detected. Old: <host>.example.org/<ip>:<port> New: <host>.example.org/<ip>:<port>"),
                (20, "Error executing shell command [kill -9 <pid>] exit code <smallint>"),
                (15, "Container container_<int>_<smallint>_<smallint>_<int> transitioned from RUNNING to <choice:KILLING|DONE>"),
                (10, "TaskAttempt: [attempt_<int>_<smallint>_m_<int>_<smallint>] using containerId: [container_<int>_<smallint>_<smallint>_<int>]"),
                (8, "Received completed container container_<int>_<smallint>_<smallint>_<int>"),
                (5, "JVM with ID : jvm_<int>_<smallint>_m_<int> asked for a task"),
                (3, "Communication exception: java.net.ConnectException: Connection refused"),
                (2, "Killing taskAttempt because it is running on unusable node <host>:<port>"),
                (1, "RECEIVED SIGNAL 15: SIGTERM"),
                (1, "Instantiated org.apache.hadoop.metrics2.sink.timeline.HadoopTimelineMetricsSink"),
                (1, "IPC Server handler <smallint> on <port>, call heartbeat took <int>ms"),
                (1, "Moving tmp dir: <path> to: <path>"),
            ],
        },
        "Spark" => ServiceSpec {
            name: "Spark",
            header: Header::Spark,
            events: events![
                (400, "Finished task <float> in stage <float> (TID <int>) in <int> ms on <host> (<int>/<int>)"),
                (350, "Running task <float> in stage <float> (TID <int>)"),
                (280, "Started reading broadcast variable <int>"),
                (240, "Reading broadcast variable <int> took <int> ms"),
                (200, "Block broadcast_<int> stored as values in memory (estimated size <float> KB, free <float> MB)"),
                (160, "Getting <int> non-empty blocks out of <int> blocks"),
                (120, "Started <smallint> remote fetches in <int> ms"),
                (80, "Found block rdd_<int>_<int> locally"),
                (60, "Input split: hdfs://<host><path>:<int>+<int>"),
                (40, "Saved output of task 'attempt_<int>' to hdfs://<host><path>"),
                (25, "Removed broadcast_<int>_piece<smallint> on <ipport> in memory (size: <float> KB, free: <float> GB)"),
                (15, "Executor is trying to kill task <float> in stage <float> (TID <int>)"),
                (8, "Lost connection to <host>:<port>, closing connection"),
                (4, "java.io.FileNotFoundException: File does not exist: <path>"),
                (3, "Asked to send map output locations for shuffle <smallint> to <ipport>"),
                (2, "Putting block rdd_<int>_<int> failed due to exception"),
                (1, "Dropping block broadcast_<int> from memory to free <size> bytes"),
                (1, "Not enough space to cache rdd_<int>_<int> in memory! (computed <float> MB so far)"),
            ],
        },
        "Zookeeper" => ServiceSpec {
            name: "Zookeeper",
            header: Header::Zookeeper,
            events: events![
                (380, "Received connection request <slaship>:<port>"),
                (330, "Accepted socket connection from <slaship>:<port>"),
                (300, "Closed socket connection for client <slaship>:<port> which had sessionid 0x<hex>"),
                (260, "Client attempting to establish new session at <slaship>:<port>"),
                (220, "Established session 0x<hex> with negotiated timeout <int> for client <slaship>:<port>"),
                (160, "Processed session termination for sessionid: 0x<hex>"),
                (120, "Expiring session 0x<hex>, timeout of <int>ms exceeded"),
                (80, "caught end of stream exception"),
                (50, "Connection broken for id <int>, my id = <smallint>, error ="),
                (35, "Interrupting SendWorker"),
                (25, "Interrupted while waiting for message on queue"),
                (18, "Send worker leaving thread"),
                (12, "Notification time out: <int>"),
                (6, "My election bind port: <host>.example.org/<ip>:<port>"),
                (3, "Cannot open channel to <smallint> at election address <host>.example.org/<ip>:<port>"),
                (2, "Exception causing close of session 0x<hex> due to java.io.IOException: ZooKeeperServer not running"),
                (1, "Too many connections from <slaship> - max is <int>"),
                (1, "Unexpected Exception: java.nio.channels.CancelledKeyException"),
                (1, "Have smaller server identifier, so dropping the connection: (<smallint>, <smallint>)"),
            ],
        },
        "OpenStack" => ServiceSpec {
            name: "OpenStack",
            header: Header::OpenStack,
            events: events![
                // Long templates with adjacent variables and bracketed ids
                // make OpenStack one of the harder datasets.
                (300, "[instance: <hex>-<hex>] VM <choice:Started|Paused|Resumed|Stopped> (Lifecycle Event)"),
                (260, "<ip> \"GET /v2/<hex>/servers/detail HTTP/1.1\" status: <int> len: <int> time: <float>"),
                (220, "[instance: <hex>-<hex>] Took <float> seconds to <choice:build|spawn|deallocate> the instance on the hypervisor."),
                (180, "[instance: <hex>-<hex>] Terminating instance"),
                (150, "[instance: <hex>-<hex>] Instance <choice:destroyed|rebuilt|snapshotted> successfully."),
                (120, "Total <choice:memory|disk|vcpu>: <int> MB, used: <float> MB"),
                (90, "Final resource view: name=<host>.example.org phys_ram=<int>MB used_ram=<int>MB"),
                (60, "Active base files: <path>"),
                (45, "Running instance usage audit for host <host> from <int> to <int>. <smallint> instances."),
                (30, "[instance: <hex>-<hex>] Creating image"),
                (20, "During sync_power_state the instance has a pending task (<word>). Skip."),
                (12, "Removable base files: <path>"),
                (7, "[instance: <hex>-<hex>] Took <float> seconds to destroy the instance on the hypervisor."),
                (4, "Unexpected error while running command. Command: <path> Exit code: <smallint>"),
                (2, "No compute node record for host <host>"),
                (1, "[instance: <hex>-<hex>] Ignoring supplied device name: /dev/vda. Libvirt can''t honour user-supplied dev names"),
                (1, "Error from libvirt during undefine. Code=<smallint> Error=Domain not found"),
            ],
        },
        "BGL" => ServiceSpec {
            name: "BGL",
            header: Header::Bgl,
            events: events![
                (400, "generating core.<int>"),
                (340, "instruction cache parity error corrected"),
                (300, "<int> double-hummer alignment exceptions"),
                (260, "CE sym <smallint>, at 0x<hex>, mask 0x<hex>"),
                (200, "ddr: excessive soft failures, consider replacing the ddr memory"),
                (150, "total of <int> ddr error(s) detected and corrected"),
                (110, "<int> L3 EDRAM error(s) (dcr 0x<hex>) detected and corrected"),
                (80, "MidplaneSwitchController performing bit sparing on R<smallint>-M<smallint> bit <int>"),
                (55, "program interrupt: fp cr field..............<smallint>"),
                (40, "data TLB error interrupt"),
                (28, "machine check interrupt (bit=0x<hex>): L2 dcache unit data parity error"),
                (18, "rts: kernel terminated for reason <int>"),
                (12, "idoproxydb hit ASSERT condition: ASSERT expression=<int>"),
                (8, "NodeCard is not fully functional"),
                (5, "ciod: failed to read message prefix on control stream (CioStream socket to <host>:<port>)"),
                (3, "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to <host>:<port>"),
                (2, "ciod: LOGIN chdir(<path>) failed: No such file or directory"),
                (1, "critical input interrupt (unit=0x<hex> bit=0x<hex>): warning for torus y+ wire"),
                (1, "L3 ecc control register: 0x<hex>"),
                (1, "uncorrectable error detected on link <smallint>"),
                (1, "power module U<smallint> is not accessible"),
                (1, "problem communicating with service card, ido chip: iface 0x<hex>"),
                (1, "wait state enable.....................<smallint>"),
            ],
        },
        "HPC" => ServiceSpec {
            name: "HPC",
            header: Header::Hpc,
            events: events![
                // Numeric-heavy and repetitive: tools that over-merge numbers
                // struggle here (paper best is 0.903, Sequence-RTG 0.739).
                (420, "Component State Change: Component \"alt0\" is in the unavailable state (HWID=<int>)"),
                (300, "Link error on broadcast tree interconnect ndb<int>"),
                (260, "Temperature (<int>) exceeds warning threshold"),
                (200, "Fan speeds ( <int> <int> <int> <int> <int> <int> )"),
                (160, "node node-<int> has <smallint> processors available"),
                (120, "PSU status ( on on )"),
                (90, "ambient=<int>"),
                (70, "Power unit failure on node-<int>"),
                (45, "risBoot command ( <int> ) Error: timed out"),
                (30, "ClusterFileSystem: There is no server for unit <int>"),
                (20, "boot (command <int>) Error: client did not respond"),
                (12, "detected over-temperature condition on node-<int>"),
                (6, "running /var/opt checks on node-<int>"),
                (3, "network interface ndb<int> reset"),
                (2, "Found invalid basic header, <word> cmd <int>"),
                (1, "critical temperature threshold exceeded on node-<int>, shutting down"),
                (1, "not responding to node-<int> psu query"),
            ],
        },
        "Thunderbird" => ServiceSpec {
            name: "Thunderbird",
            header: Header::Syslog("kernel"),
            events: events![
                (360, "session opened for user <user> by (uid=<uid>)"),
                (320, "session closed for user <user>"),
                (280, "connection from <ip> () at <word> port <port>"),
                (240, "check pass; user unknown"),
                (200, "authentication failure; logname= uid=<uid> euid=<uid> tty=NODEVssh ruser= rhost=<host>.example.org"),
                (150, "Did not receive identification string from <ip>"),
                (110, "DHCPDISCOVER from <mac> via eth<smallint>"),
                (85, "DHCPOFFER on <ip> to <mac> via eth<smallint>"),
                (60, "synchronized to <ip>, stratum <smallint>"),
                (42, "kernel: imklog <ver>, log source = /proc/kmsg started."),
                (30, "data address mask: 0x<hex>"),
                (22, "EXT3-fs: mounted filesystem with ordered data mode."),
                (15, "audit: initializing netlink socket (disabled)"),
                (10, "ACPI: Power Button (FF) [PWRF]"),
                (6, "pci_hotplug: PCI Hot Plug PCI Core version: <ver>"),
                (4, "CPU <smallint>: Machine Check Exception: <int> Bank <smallint>: b200000000070f0f"),
                (2, "Losing some ticks... checking if CPU frequency changed."),
                (1, "NMI appears to be stuck (dazed and confused, but trying to continue)"),
                (1, "Out of Memory: Killed process <pid> (<word>)."),
                (1, "irq <smallint>: nobody cared!"),
                (1, "martian source <ip> from <ip>, on dev eth<smallint>"),
                (1, "e1000: eth<smallint>: e1000_watchdog_task: NIC Link is Up 1000 Mbps Full Duplex"),
                (1, "VFS: file-max limit <int> reached"),
            ],
        },
        "Windows" => ServiceSpec {
            name: "Windows",
            header: Header::Windows,
            events: events![
                (500, "Loaded Servicing Stack v<ver> with Core: <path>\\cbscore.dll"),
                (420, "SQM: Initializing online with Windows opt-in: <choice:True|False>"),
                (360, "SQM: Cleaning up report files older than <smallint> days."),
                (300, "SQM: Requesting upload of all unsent reports."),
                (260, "SQM: Failed to start upload with file pattern: <path> flags: 0x<hex> [HRESULT = 0x<hex> - E_FAIL]"),
                (200, "SQM: Queued <smallint> file(s) for upload with pattern: <path>"),
                (150, "SQM: Warning: Failed to upload all unsent reports. [HRESULT = 0x<hex> - E_FAIL]"),
                (100, "Failed to internally open package. [HRESULT = 0x<hex> - CBS_E_INVALID_PACKAGE]"),
                (60, "Session: <int>_<int> initialized by client WindowsUpdateAgent."),
                (30, "Read out cached package applicability for package: Package_for_KB<int>~31bf3856ad364e35~amd64~~<ver>, ApplicableState: <int>, CurrentState: <int>"),
                (15, "Scavenge: Starts"),
                (8, "Scavenge: Completes, disposition: <smallint>"),
                (4, "Idle processing thread terminated normally"),
                (2, "Startup processing thread terminated normally"),
                (1, "Disowning parent of package: Package_<int>_for_KB<int>~31bf3856ad364e35~amd64~~<ver>"),
                (1, "Doqe: [missing package] Package_for_KB<int>~31bf3856ad364e35~amd64~~<ver>"),
                (1, "Unloading offline registry hive: {bf1a281b-ad7b-4476-ac95-f47682990ce7}C:/Users/Default/NTUSER.DAT"),
            ],
        },
        "Linux" => ServiceSpec {
            name: "Linux",
            header: Header::Syslog("sshd(pam_unix)"),
            events: events![
                // A long tail of near-singleton events and one-word
                // differences: the hardest dataset in Table II (best 0.701).
                (260, "authentication failure; logname= uid=<uid> euid=<uid> tty=NODEVssh ruser= rhost=<host>.example.org user=<user>"),
                (240, "authentication failure; logname= uid=<uid> euid=<uid> tty=NODEVssh ruser= rhost=<host>.example.org"),
                (200, "session opened for user <user> by (uid=<uid>)"),
                (190, "session closed for user <user>"),
                (130, "check pass; user unknown"),
                (90, "connection from <ip> () at <word> port <port>"),
                (60, "Did not receive identification string from <ip>"),
                (40, "ALERT exited abnormally with [1]"),
                (30, "startup succeeded"),
                (30, "shutdown succeeded"),
                (20, "Couldn't open /etc/securetty"),
                (14, "cups: cupsd startup succeeded"),
                (12, "cups: cupsd shutdown succeeded"),
                (10, "klogd startup succeeded"),
                (9, "syslogd startup succeeded"),
                (8, "crond startup succeeded"),
                (7, "anacron startup succeeded"),
                (6, "xinetd startup succeeded"),
                (5, "Received disconnect from <ip>: <smallint>: Bye Bye"),
                (4, "Kernel command line: ro root=LABEL=<path> rhgb quiet"),
                (4, "Memory: <int>k/<int>k available (<int>k kernel code, <int>k reserved, <int>k data, <int>k init, <int>k highmem)"),
                (3, "PCI: Using configuration type <smallint>"),
                (3, "audit(<float>:<smallint>): initialized"),
                (2, "Freeing unused kernel memory: <int>k freed"),
                (2, "Installing knfsd (copyright (C) 1996 okir@monad.swb.de)."),
                (1, "warning: can't get client address: Connection reset by peer"),
                (1, "Failed to bind to LDAP server ldap://<host>.example.org/: Can't contact LDAP server"),
                (1, "imap-login: Disconnected: Inactivity [<ip>]"),
                (1, "NET: Registered protocol family <smallint>"),
                (1, "apmd startup succeeded"),
                (1, "sdpd startup succeeded"),
                (1, "random: crng init done"),
                (1, "hdc: attached ide-cdrom driver."),
                (1, "mtrr: 0x<hex>000,0x<hex>000 overlaps existing 0x<hex>000,0x<hex>000"),
                (1, "ALSA card found"),
                (1, "Attempting manual resume"),
                (1, "logrotate: ALERT exited abnormally with [<smallint>]"),
                (1, "gdm(pam_unix)[<pid>]: session opened for user <user> by (uid=<uid>)"),
            ],
        },
        "Mac" => ServiceSpec {
            name: "Mac",
            header: Header::Syslog("kernel"),
            events: events![
                (220, "ARPT: <float>: wl0: wl_update_tcpkeep_seq: Original Seq: <int>, Ack: <int>, Win size: <int>"),
                (200, "IO80211AWDLPeerManager::setAwdlOperatingMode Setting the AWDL operation mode from <choice:AUTO|SUSPENDED|ON> to <choice:AUTO|SUSPENDED|ON>"),
                (180, "en0: BSSID changed to <mac>"),
                (160, "AirPort: Link Up on awdl0"),
                (140, "Previous shutdown cause: <smallint>"),
                (120, "PM response took <int> ms (<smallint>, powerd)"),
                (100, "Wake reason: RTC (Alarm)"),
                (85, "AppleCamIn::systemWakeCall - messageType = 0x<hex>"),
                (70, "ASL Sender Statistics"),
                (55, "Sandbox: com.apple.Addres(<pid>) deny(1) mach-lookup com.apple.coreservices.launchservicesd"),
                (45, "networkd_settings_read_from_file initialized networkd settings by reading plist directly"),
                (36, "Captive: CNPluginHandler en0: Inactive"),
                (28, "Bluetooth -- LE is supported - Enabling LE meta event"),
                (22, "Basebandmanager: powering on baseband"),
                (18, "WiFi is in sleep mode, disconnecting"),
                (14, "hibernate image path: <path>"),
                (11, "sizeof(IOHibernateImageHeader) == <int>"),
                (9, "display surface mirroring enabled for display <int>"),
                (7, "corecaptured: CCFile::captureLogRun Skipping current file Dir file [<path>]"),
                (5, "QQ: assertion failed in window server connection"),
                (4, "mDNSResponder: SendResponses: full answer list for <host>.example.org"),
                (3, "TTY idle timeout reached on session <int>"),
                (2, "thunderbolt power state transition to <smallint>"),
                (2, "USBMSC Identifier (non-unique): 0x<hex> 0x<hex> 0x<hex>"),
                (1, "kern memorystatus: killing_idle_process pid <pid> [<word>]"),
                (1, "nsurlsessiond: Connection 55: unable to determine interface type without flow check"),
                (1, "garbage collection of event store triggered"),
                (1, "backupd-helper: Not starting Time Machine backup after wake - less than 60 minutes since last backup"),
                (1, "AppleThunderboltNHIType2::waitForOk2Go2Sx - retries exceeded"),
                (1, "Unknown key for event matching: seq"),
                (1, "FaceTime quit unexpectedly"),
                (1, "com.apple.cts[<pid>]: com.apple.EscrowSecurityAlert.daily: scheduler_evaluate_activity told me to run this job"),
                (1, "WindowServer: CGXDisplayDidWakeNotification [<size>]: posting kCGSDisplayDidWake"),
                (1, "spindump: Saved crash report for QQ[<pid>]"),
            ],
        },
        "Android" => ServiceSpec {
            name: "Android",
            header: Header::Android,
            events: events![
                (300, "printFreezingDisplayLogsopening app wtoken = AppWindowToken{<hex> token=Token{<hex> ActivityRecord{<hex> u0 com.tencent.qt4/.main t<int>}}}, allDrawn= <choice:true|false>, startingDisplayed = <choice:true|false>"),
                (260, "Skipping AppWindowToken{<hex> token=Token{<hex> ActivityRecord{<hex> u0 com.android.systemui/.recents t<int>}}} -- going to hide"),
                (220, "Losing focus: Window{<hex> u0 com.tencent.qt4/com.tencent.main}"),
                (190, "Gaining focus: Window{<hex> u0 StatusBar}"),
                (150, "setSystemUiVisibility vis=<hex> mask=<hex> oldVal=<hex> newVal=<hex>"),
                (120, "Acquiring wakelock <word> on behalf of uid <uid>"),
                (95, "Releasing wakelock <word> on behalf of uid <uid>"),
                (70, "battery level changed to <smallint>"),
                (50, "power: setDozeAfterScreenOff(<choice:true|false>)"),
                (35, "updateInputWindows: skipping, no surface for Window{<hex> u0 PopupWindow:<hex>}"),
                (25, "SurfaceFlinger: latchBuffer mLayerName = com.tencent.qt4#0"),
                (18, "am_proc_start: [0,<pid>,<uid>,com.android.provider,service,.GService]"),
                (12, "GC_FOR_ALLOC freed <int>K, <smallint>% free <int>K/<int>K, paused <int>ms, total <int>ms"),
                (8, "Force stopping com.<word>.app appid=<uid> user=0: from pid <pid>"),
                (5, "Timeout executing service: ServiceRecord{<hex> u0 com.<word>.app/.MainService}"),
                (3, "ANR in com.<word>.app (com.<word>.app/.MainActivity)"),
                (2, "dumpsys meminfo returned <int> entries"),
                (1, "Initializing hardware composer"),
                (1, "audio_hw_primary: select_devices: out_device <hex> input_source <smallint>"),
                (1, "healthd: battery l=<smallint> v=<int> t=<float> h=<smallint> st=<smallint> c=<int>"),
            ],
        },
        "HealthApp" => ServiceSpec {
            name: "HealthApp",
            header: Header::HealthApp,
            events: events![
                (400, "calculateCaloriesWithCache totalCalories=<int>"),
                (340, "getTodayTotalDetailSteps = <int>##<int>##<int>##<int>##<int>"),
                (300, "onStandStepChanged <int>"),
                (260, "onExtend:<int> <int> <int> <int>"),
                (200, "REPORT : <int> <int> <int> <int>"),
                (150, "processHandleBroadcastAction action:android.intent.action.SCREEN_ON"),
                (110, "flush sensor data"),
                (80, "upLoadHealthData time is <int>"),
                (55, "setTodayTotalDetailSteps=<int>##<int>##<int>##<int>"),
                (38, "readTodayDataFromDatabase from date = <int>"),
                (25, "saveDataToDb(): committed steps = <int>"),
                (15, "screen status unknown"),
                (8, "registerContentObserver success"),
                (4, "DataChanged uri = content://com.huawei.health/<path>"),
                (2, "onReceive action = android.intent.action.BATTERY_CHANGED"),
                (1, "debug_fenceStand closeStandTimeout"),
                (1, "aggregateDataToDb() steps=<int> cal=<float>"),
            ],
        },
        "Apache" => ServiceSpec {
            name: "Apache",
            header: Header::Apache,
            events: events![
                // Six cleanly separated events: every parser scores 1.0.
                (500, "workerEnv.init() ok <path>"),
                (420, "mod_jk child workerEnv in error state <smallint>"),
                (300, "jk2_init() Found child <pid> in scoreboard slot <smallint>"),
                (200, "[client <ip>] Directory index forbidden by rule: <path>"),
                (80, "jk2_init() Can't find child <pid> in scoreboard"),
                (20, "mod_security: Access denied with code 403. Pattern match \"<word>\" at REQUEST_URI"),
            ],
        },
        "OpenSSH" => ServiceSpec {
            name: "OpenSSH",
            header: Header::Syslog("sshd"),
            events: events![
                (420, "Failed password for invalid user <user> from <ip> port <port> ssh2"),
                (360, "pam_unix(sshd:auth): authentication failure; logname= uid=<uid> euid=<uid> tty=ssh ruser= rhost=<host>.example.org"),
                (300, "Received disconnect from <ip>: 11: Bye Bye [preauth]"),
                (260, "Invalid user <user> from <ip>"),
                (220, "input_userauth_request: invalid user <user> [preauth]"),
                (180, "Accepted password for <user> from <ip> port <port> ssh2"),
                (140, "reverse mapping checking getaddrinfo for <host>.example.org [<ip>] failed - POSSIBLE BREAK-IN ATTEMPT!"),
                (100, "Connection closed by <ip> [preauth]"),
                (70, "Did not receive identification string from <ip>"),
                (45, "PAM <smallint> more authentication failures; logname= uid=<uid> euid=<uid> tty=ssh ruser= rhost=<host>.example.org"),
                (30, "Disconnecting: Too many authentication failures for <user> [preauth]"),
                (18, "error: Received disconnect from <ip>: 3: com.jcraft.jsch.JSchException: Auth fail [preauth]"),
                (10, "pam_unix(sshd:session): session opened for user <user> by (uid=<uid>)"),
                (6, "pam_unix(sshd:session): session closed for user <user>"),
                (3, "fatal: Write failed: Connection reset by peer [preauth]"),
                (2, "error: maximum authentication attempts exceeded for <user> from <ip> port <port> ssh2 [preauth]"),
                (1, "Bad protocol version identification ''<word>'' from <ip> port <port>"),
                (1, "Corrupted MAC on input. [preauth]"),
                (1, "Received signal 15; terminating."),
                (1, "Server listening on :: port 22."),
            ],
        },
        "Proxifier" => ServiceSpec {
            name: "Proxifier",
            header: Header::Proxifier,
            events: events![
                // The byte-count fields flip between `123` and `123*`
                // (documented limitation: two patterns for one event,
                // "rendering nearly 50% of the results invalid").
                (400, "<host>.example.org:<port> close, <intstar> bytes sent, <intstar> bytes received, lifetime <duration>"),
                (340, "<host>.example.org:<port> open through proxy proxy.example.org:3128 HTTPS"),
                (120, "<host>.example.org:<port> HTTPS proxy.example.org:3128"),
                (70, "open through proxy proxy.example.org:3128 HTTPS"),
                (40, "<host>.example.org:<port> error : Could not connect through proxy proxy.example.org:3128 - Proxy handshake failed."),
                (20, "<host>.example.org:<port> close, <intstar> bytes (<float> KB) sent, <intstar> bytes (<float> KB) received, lifetime <duration>"),
            ],
        },
        other => panic!("unknown dataset {other}"),
    }
}

/// Generate a labelled dataset of `n` lines (the LogHub samples are 2,000
/// lines each) with a deterministic seed.
pub fn generate(name: &str, n: usize, seed: u64) -> Dataset {
    let s = spec(name);
    let parsed: Vec<(String, Vec<TemplatePart>)> = s
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| (format!("E{}", i + 1), parse_template(e.template)))
        .collect();
    let weights: Vec<u32> = s.events.iter().map(|e| e.weight).collect();
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut rng = Rng::seed_from_u64(seed ^ hash_name(name));
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        // Weighted event choice.
        let mut pick = rng.gen_range(0..total);
        let mut ei = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w as u64 {
                ei = i;
                break;
            }
            pick -= w as u64;
        }
        let (event, parts) = &parsed[ei];
        let (content, preprocessed) = instantiate(parts, &mut rng);
        let header = s.header.generate(&mut rng);
        lines.push(LabeledLine {
            raw: format!("{header}{content}"),
            content,
            preprocessed,
            event: event.clone(),
        });
    }
    Dataset {
        name: s.name,
        lines,
        event_count: s.events.len(),
    }
}

pub(crate) fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::TemplatePart;

    /// Guard against template typos: every `<...>` in every template must
    /// either parse as a known slot or appear on the explicit literal
    /// whitelist (angle-bracket text that is genuinely part of the message).
    #[test]
    fn all_template_slots_are_known() {
        const LITERAL_WHITELIST: &[&str] = &["<errors>"];
        for name in DATASET_NAMES {
            let svc = spec(name);
            for e in &svc.events {
                let parts = parse_template(e.template);
                let mut rebuilt = String::new();
                for p in &parts {
                    if let TemplatePart::Literal(t) = p {
                        rebuilt.push_str(t);
                    }
                }
                // Any '<' left in literal text must be whitelisted.
                let mut rest = rebuilt.as_str();
                while let Some(pos) = rest.find('<') {
                    let tail = &rest[pos..];
                    assert!(
                        LITERAL_WHITELIST.iter().any(|w| tail.starts_with(w)),
                        "{name}: suspicious literal '<' in template {:?} (leftover: {:?})",
                        e.template,
                        &tail[..tail.len().min(24)],
                    );
                    rest = &rest[pos + 1..];
                }
            }
        }
    }

    /// Every service's event weights are positive and its templates are
    /// mutually distinct (duplicate templates would merge two labels into
    /// an unlearnable event pair).
    #[test]
    fn event_specs_are_sane() {
        for name in DATASET_NAMES {
            let svc = spec(name);
            let mut seen = std::collections::HashSet::new();
            for e in &svc.events {
                assert!(e.weight > 0, "{name}: zero weight");
                assert!(
                    seen.insert(e.template),
                    "{name}: duplicate template {:?}",
                    e.template
                );
            }
        }
    }

    #[test]
    fn all_sixteen_generate() {
        for name in DATASET_NAMES {
            let d = generate(name, 200, 1);
            assert_eq!(d.lines.len(), 200, "{name}");
            assert!(d.event_count >= 6, "{name} has too few events");
            // Ground truth labels are within range.
            for l in &d.lines {
                let idx: usize = l.event[1..].parse().unwrap();
                assert!(idx >= 1 && idx <= d.event_count, "{name}: {}", l.event);
                assert!(!l.raw.is_empty() && !l.content.is_empty());
                assert!(
                    l.raw.ends_with(&l.content),
                    "{name}: header+content composition"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate("HDFS", 100, 42);
        let b = generate("HDFS", 100, 42);
        assert_eq!(a.lines, b.lines);
        let c = generate("HDFS", 100, 43);
        assert_ne!(a.lines, c.lines);
    }

    #[test]
    fn preprocessed_masks_common_fields() {
        let d = generate("OpenSSH", 300, 7);
        let masked = d
            .lines
            .iter()
            .filter(|l| l.preprocessed.contains("<*>"))
            .count();
        assert!(
            masked > 200,
            "most OpenSSH lines carry masked fields: {masked}"
        );
        // User names survive pre-processing (not masked).
        assert!(d
            .lines
            .iter()
            .any(|l| l.event == "E6" && !l.preprocessed.contains("for <*> from")));
    }

    #[test]
    fn healthapp_headers_lack_leading_zeros() {
        let d = generate("HealthApp", 400, 3);
        // At least some headers have single-digit time parts — the feature
        // that breaks the default Sequence datetime FSM.
        let single_digit = d
            .lines
            .iter()
            .filter(|l| {
                let header = &l.raw[..l.raw.len() - l.content.len()];
                let time = header.split('|').next().unwrap_or("");
                let parts: Vec<&str> = time.split('-').nth(1).unwrap_or("").split(':').collect();
                parts.iter().take(3).any(|p| p.len() == 1)
            })
            .count();
        assert!(
            single_digit > 50,
            "single-digit time parts present: {single_digit}"
        );
    }

    #[test]
    fn proxifier_has_intstar_flips() {
        let d = generate("Proxifier", 500, 5);
        let with_star = d
            .lines
            .iter()
            .filter(|l| l.content.contains("* bytes"))
            .count();
        let without = d
            .lines
            .iter()
            .filter(|l| l.content.contains(" bytes") && !l.content.contains("* bytes"))
            .count();
        // A close event carries two byte-count fields; a line only counts as
        // star-free when neither flipped (p = 0.25), so the star-free side
        // is naturally smaller.
        assert!(with_star > 60 && without > 25, "{with_star} vs {without}");
    }

    #[test]
    fn weighted_distribution_roughly_holds() {
        let d = generate("Apache", 2000, 11);
        let e1 = d.lines.iter().filter(|l| l.event == "E1").count();
        let e6 = d.lines.iter().filter(|l| l.event == "E6").count();
        assert!(
            e1 > e6 * 3,
            "E1 (weight 500) far more common than E6 (weight 20): {e1} vs {e6}"
        );
    }

    #[test]
    fn rare_events_present_in_long_tail_datasets() {
        let d = generate("Linux", 2000, 9);
        let distinct: std::collections::HashSet<&str> =
            d.lines.iter().map(|l| l.event.as_str()).collect();
        assert!(
            distinct.len() >= 20,
            "Linux long tail: {} events",
            distinct.len()
        );
    }
}
