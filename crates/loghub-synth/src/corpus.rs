//! The multi-service production stream used by the Fig. 5 performance
//! experiment and the Fig. 7 production simulation.
//!
//! The paper's Fig. 5 datasets "contained an average of 241 unique services".
//! This generator synthesises such a composite stream: each virtual service
//! is a clone of one of the sixteen base template sets, with its own name and
//! seed, so the stream mixes hundreds of token-count/shape distributions the
//! way a centralised syslog-ng feed does.

use crate::datasets::{generate, DATASET_NAMES};
use testkit::rng::Rng;

/// One stream item (mirrors `sequence_rtg::LogRecord` without the
/// dependency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamItem {
    /// Virtual service name (`svc-042-HDFS`).
    pub service: String,
    /// The raw message.
    pub message: String,
    /// Ground-truth event id, scoped to the service.
    pub event: String,
}

/// Configuration for the composite stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Number of virtual services (the paper's Fig. 5 averages 241).
    pub services: usize,
    /// Total number of stream items.
    pub total: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            services: 241,
            total: 100_000,
            seed: 1,
        }
    }
}

/// Generate the composite stream. Items are interleaved across services in a
/// deterministic shuffled order, like a centralised collector output.
pub fn generate_stream(config: CorpusConfig) -> Vec<StreamItem> {
    let mut rng = Rng::seed_from_u64(config.seed);
    // Per-service volume: Zipf-ish weights so a few services dominate, as in
    // real data centres.
    let mut weights = Vec::with_capacity(config.services);
    for s in 0..config.services {
        weights.push(1.0 / (1.0 + s as f64).powf(0.8));
    }
    let wsum: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * config.total as f64).floor() as usize)
        .collect();
    let assigned: usize = counts.iter().sum();
    for i in 0..config.total - assigned {
        counts[i % config.services] += 1;
    }

    let mut out = Vec::with_capacity(config.total);
    for (si, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let base = DATASET_NAMES[si % DATASET_NAMES.len()];
        let service = format!("svc-{si:03}-{base}");
        let d = generate(base, count, config.seed.wrapping_add(si as u64 * 7919));
        for line in d.lines {
            out.push(StreamItem {
                service: service.clone(),
                message: line.raw,
                event: line.event,
            });
        }
    }
    // Deterministic interleave (Fisher–Yates with the seeded RNG).
    rng.shuffle(&mut out);
    out
}

/// Serialise a stream to the Sequence-RTG JSON-lines input format.
pub fn to_json_lines(items: &[StreamItem]) -> String {
    let mut s = String::new();
    for item in items {
        s.push_str(&jsonlite::to_string(&jsonlite::object([
            ("service", item.service.as_str()),
            ("message", item.message.as_str()),
        ])));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_has_requested_shape() {
        let items = generate_stream(CorpusConfig {
            services: 50,
            total: 5_000,
            seed: 3,
        });
        assert_eq!(items.len(), 5_000);
        let services: HashSet<&str> = items.iter().map(|i| i.service.as_str()).collect();
        assert!(
            services.len() >= 45,
            "most services appear: {}",
            services.len()
        );
    }

    #[test]
    fn zipf_head_dominates() {
        let items = generate_stream(CorpusConfig {
            services: 50,
            total: 10_000,
            seed: 3,
        });
        let head = items
            .iter()
            .filter(|i| i.service.starts_with("svc-000-"))
            .count();
        let tail = items
            .iter()
            .filter(|i| i.service.starts_with("svc-049-"))
            .count();
        assert!(head > tail * 3, "zipf skew: head={head} tail={tail}");
    }

    #[test]
    fn deterministic() {
        let cfg = CorpusConfig {
            services: 20,
            total: 1_000,
            seed: 9,
        };
        assert_eq!(generate_stream(cfg), generate_stream(cfg));
    }

    #[test]
    fn json_lines_round_trip() {
        let items = generate_stream(CorpusConfig {
            services: 5,
            total: 50,
            seed: 2,
        });
        let text = to_json_lines(&items);
        let mut n = 0;
        for line in text.lines() {
            let v = jsonlite::parse(line).unwrap();
            assert!(v.get("service").is_some() && v.get("message").is_some());
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn default_matches_paper_service_count() {
        assert_eq!(CorpusConfig::default().services, 241);
    }
}
