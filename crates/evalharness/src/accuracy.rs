//! The parsing-accuracy metric of Zhu et al. (ICSE-SEIP 2019), as used by
//! the paper.
//!
//! "They measured the accuracy using the ratio of correctly parsed log
//! messages over the total number of log messages." A message is *correctly
//! parsed* when the event its parser assigned groups together exactly the
//! same set of messages as the ground-truth event — the strict *group
//! accuracy* definition: over-splitting an event or merging two events
//! marks every affected message wrong.

use std::collections::HashMap;

/// Compute group accuracy.
///
/// `predicted` and `truth` give, for each message, its predicted cluster id
/// and ground-truth event label. Returns the fraction of messages whose
/// predicted cluster is a *perfect* reconstruction of their true event.
/// Edge-case policy shared by every metric in this module:
///
/// * **Empty input** (no messages on either side) scores **1.0** — a parser
///   shown nothing has grouped nothing wrong. The vacuous-truth convention
///   keeps per-family CI gates well-defined when a scaled-down corpus
///   filters to zero lines.
/// * **Length mismatch** does not panic: messages are compared over the
///   zipped prefix and the denominator is `max(len)`, so every unpaired
///   message counts as wrong. A parser that dropped (or invented) lines is
///   penalised, not crashed on.
pub fn group_accuracy<P, T>(predicted: &[P], truth: &[T]) -> f64
where
    P: std::hash::Hash + Eq + Clone,
    T: std::hash::Hash + Eq + Clone,
{
    if predicted.is_empty() && truth.is_empty() {
        return 1.0;
    }
    let denom = predicted.len().max(truth.len());
    // Sizes of each true event and each predicted cluster, over the paired
    // prefix only (unpaired suffix messages can never score).
    let paired = predicted.len().min(truth.len());
    let mut truth_sizes: HashMap<&T, usize> = HashMap::new();
    for t in &truth[..paired] {
        *truth_sizes.entry(t).or_insert(0) += 1;
    }
    let mut pred_sizes: HashMap<&P, usize> = HashMap::new();
    for p in &predicted[..paired] {
        *pred_sizes.entry(p).or_insert(0) += 1;
    }
    // Joint counts.
    let mut joint: HashMap<(&P, &T), usize> = HashMap::new();
    for (p, t) in predicted.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
    }
    // A predicted cluster P is correct iff it consists of exactly one truth
    // label T and |P| == |T| (it captured the whole event and nothing else).
    let mut correct = 0usize;
    for ((p, t), &n) in &joint {
        if pred_sizes[p] == n && truth_sizes[t] == n {
            correct += n;
        }
    }
    correct as f64 / denom as f64
}

/// Compute *mapping accuracy*: the metric the Sequence-RTG authors describe
/// for Table II.
///
/// The paper's artifact maps each Sequence-RTG pattern id to a ground-truth
/// event label ("a CSV file for each service to map Sequence-RTG patternids
/// to the corresponding labels") and scores "if the event label in the
/// pre-processed file matches the event determined by the tool". That is a
/// one-to-one assignment between predicted clusters and true events: each
/// event keeps its single best pattern; messages in secondary patterns of a
/// split event count as wrong (hence Proxifier's "nearly 50% of the results
/// invalid"), and a merged cluster can only be right for one of its events.
///
/// Implemented as a greedy maximum-overlap one-to-one matching (largest
/// joint counts first), which is exact for the dominant-diagonal confusion
/// matrices log parsers produce.
pub fn mapping_accuracy<P, T>(predicted: &[P], truth: &[T]) -> f64
where
    P: std::hash::Hash + Eq + Clone,
    T: std::hash::Hash + Eq + Clone,
{
    if predicted.is_empty() && truth.is_empty() {
        return 1.0;
    }
    let denom = predicted.len().max(truth.len());
    let mut joint: HashMap<(&P, &T), usize> = HashMap::new();
    for (p, t) in predicted.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
    }
    let mut pairs: Vec<((&P, &T), usize)> = joint.into_iter().collect();
    // Deterministic order: overlap descending, then stable by insertion via
    // full re-sort on counts only is ambiguous — break ties by comparing the
    // first message index of each pair.
    let mut first_index: HashMap<(&P, &T), usize> = HashMap::new();
    for (i, (p, t)) in predicted.iter().zip(truth).enumerate() {
        first_index.entry((p, t)).or_insert(i);
    }
    pairs.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(first_index[&a.0].cmp(&first_index[&b.0]))
    });
    let mut used_p: std::collections::HashSet<&P> = std::collections::HashSet::new();
    let mut used_t: std::collections::HashSet<&T> = std::collections::HashSet::new();
    let mut correct = 0usize;
    for ((p, t), n) in pairs {
        if used_p.contains(p) || used_t.contains(t) {
            continue;
        }
        used_p.insert(p);
        used_t.insert(t);
        correct += n;
    }
    correct as f64 / denom as f64
}

/// Template-level precision/recall/F1 over groups (the FGA-style metric of
/// the LogHub-2.0 benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateScore {
    /// Fraction of predicted groups that exactly reconstruct a truth event.
    pub precision: f64,
    /// Fraction of observed truth events exactly reconstructed by some
    /// predicted group.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
    /// Number of distinct predicted groups.
    pub predicted_groups: usize,
    /// Number of distinct ground-truth events observed in the sample.
    pub truth_groups: usize,
    /// Predicted groups whose member set equals a truth event's member set.
    pub correct_groups: usize,
}

/// Compute template-level P/R/F1: a predicted group is *correct* iff its
/// member set is exactly the member set of one ground-truth event. This is
/// the group-level companion to [`group_accuracy`] (which weights by
/// messages); LogHub-2.0 calls it FGA (F1 of Group Accuracy).
///
/// Edge cases follow the module policy: both sides empty → P=R=F1=1.0;
/// length mismatch compares the zipped prefix, with every unpaired message
/// forced into a synthetic never-correct group on the short side so the
/// mismatch shows up in precision/recall rather than a panic.
pub fn template_prf<P, T>(predicted: &[P], truth: &[T]) -> TemplateScore
where
    P: std::hash::Hash + Eq + Clone,
    T: std::hash::Hash + Eq + Clone,
{
    if predicted.is_empty() && truth.is_empty() {
        return TemplateScore {
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
            predicted_groups: 0,
            truth_groups: 0,
            correct_groups: 0,
        };
    }
    let paired = predicted.len().min(truth.len());
    let mut truth_sizes: HashMap<&T, usize> = HashMap::new();
    for t in truth {
        *truth_sizes.entry(t).or_insert(0) += 1;
    }
    let mut pred_sizes: HashMap<&P, usize> = HashMap::new();
    for p in predicted {
        *pred_sizes.entry(p).or_insert(0) += 1;
    }
    let mut joint: HashMap<(&P, &T), usize> = HashMap::new();
    for (p, t) in predicted.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
    }
    // Unpaired messages on the longer side still inflate that side's group
    // count (their groups exist but can never be "correct"); the shorter
    // side's notional extra group is accounted as one synthetic group.
    let mut predicted_groups = pred_sizes.len();
    let mut truth_groups = truth_sizes.len();
    if predicted.len() < truth.len() && paired < truth.len() {
        predicted_groups += 1; // the missing-assignments pseudo-group
    }
    if truth.len() < predicted.len() && paired < predicted.len() {
        truth_groups += 1; // the unlabeled-messages pseudo-group
    }
    let mut correct_groups = 0usize;
    for ((p, t), &n) in &joint {
        if pred_sizes[p] == n && truth_sizes[t] == n {
            correct_groups += 1;
        }
    }
    let precision = if predicted_groups == 0 {
        1.0
    } else {
        correct_groups as f64 / predicted_groups as f64
    };
    let recall = if truth_groups == 0 {
        1.0
    } else {
        correct_groups as f64 / truth_groups as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    TemplateScore {
        precision,
        recall,
        f1,
        predicted_groups,
        truth_groups,
        correct_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_grouping() {
        let pred = vec![0, 0, 1, 1, 2];
        let truth = vec!["a", "a", "b", "b", "c"];
        assert_eq!(group_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn cluster_ids_do_not_matter() {
        let pred = vec![9, 9, 4, 4];
        let truth = vec!["a", "a", "b", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn split_event_counts_all_members_wrong() {
        // Event `a` split across clusters 0 and 1: all three `a` messages
        // are wrong; `b` stays right.
        let pred = vec![0, 0, 1, 2];
        let truth = vec!["a", "a", "a", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.25);
    }

    #[test]
    fn merged_events_count_both_wrong() {
        let pred = vec![0, 0, 0, 0];
        let truth = vec!["a", "a", "b", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.0);
    }

    #[test]
    fn partial_credit_mixture() {
        // Cluster 0 = all of a (correct, 2 msgs); clusters 1,2 split b.
        let pred = vec![0, 0, 1, 2, 2];
        let truth = vec!["a", "a", "b", "b", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.4);
    }

    #[test]
    fn empty_input_is_vacuously_perfect() {
        let pred: Vec<u32> = vec![];
        let truth: Vec<&str> = vec![];
        assert_eq!(group_accuracy(&pred, &truth), 1.0);
        assert_eq!(mapping_accuracy(&pred, &truth), 1.0);
        let s = template_prf(&pred, &truth);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
        assert_eq!(s.predicted_groups, 0);
        assert_eq!(s.truth_groups, 0);
    }

    #[test]
    fn single_group_is_well_defined() {
        let pred = vec![0, 0, 0];
        let truth = vec!["a", "a", "a"];
        assert_eq!(group_accuracy(&pred, &truth), 1.0);
        assert_eq!(mapping_accuracy(&pred, &truth), 1.0);
        let s = template_prf(&pred, &truth);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
        assert_eq!(s.correct_groups, 1);
        // And a lone message:
        assert_eq!(group_accuracy(&[7], &["x"]), 1.0);
    }

    #[test]
    fn length_mismatch_penalises_instead_of_panicking() {
        // Three labelled messages, but the parser only assigned two: the
        // paired prefix is perfect, the unpaired message counts wrong.
        let pred = vec![0, 0];
        let truth = vec!["a", "a", "b"];
        let ga = group_accuracy(&pred, &truth);
        assert!((ga - 2.0 / 3.0).abs() < 1e-12, "{ga}");
        let ma = mapping_accuracy(&pred, &truth);
        assert!((ma - 2.0 / 3.0).abs() < 1e-12, "{ma}");
        assert!(ga.is_finite() && ma.is_finite());
        // Symmetric case: extra predictions with no labels.
        let ga2 = group_accuracy(&[0, 0, 1], &["a", "a"]);
        assert!((ga2 - 2.0 / 3.0).abs() < 1e-12, "{ga2}");
        // Template level: the truth event "b" has no correct predicted
        // group, and the pseudo-group dilutes precision.
        let s = template_prf(&pred, &truth);
        assert_eq!(s.correct_groups, 1);
        assert_eq!(s.predicted_groups, 2);
        assert_eq!(s.truth_groups, 2);
        assert!(s.f1.is_finite());
    }

    #[test]
    fn template_prf_scores_groups_not_messages() {
        // Cluster 0 reconstructs a (correct); b split across 1 and 2.
        let pred = vec![0, 0, 1, 2, 2];
        let truth = vec!["a", "a", "b", "b", "b"];
        let s = template_prf(&pred, &truth);
        assert_eq!(s.predicted_groups, 3);
        assert_eq!(s.truth_groups, 2);
        assert_eq!(s.correct_groups, 1);
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        let expect_f1 = 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5);
        assert!((s.f1 - expect_f1).abs() < 1e-12);
    }

    #[test]
    fn template_prf_zero_when_nothing_matches() {
        let pred = vec![0, 0, 0, 0];
        let truth = vec!["a", "a", "b", "b"];
        let s = template_prf(&pred, &truth);
        assert_eq!(s.correct_groups, 0);
        assert_eq!((s.precision, s.recall, s.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn mapping_accuracy_gives_majority_credit_on_splits() {
        // Event `a` split 3/1 across clusters 0 and 1: the majority pattern
        // keeps its 3 messages (strict GA would score all four wrong).
        let pred = vec![0, 0, 0, 1, 2];
        let truth = vec!["a", "a", "a", "a", "b"];
        assert_eq!(mapping_accuracy(&pred, &truth), 0.8);
        assert_eq!(group_accuracy(&pred, &truth), 0.2);
    }

    #[test]
    fn mapping_accuracy_punishes_merges_once() {
        // Events a (3 msgs) and b (1 msg) merged: cluster maps to a.
        let pred = vec![0, 0, 0, 0];
        let truth = vec!["a", "a", "a", "b"];
        assert_eq!(mapping_accuracy(&pred, &truth), 0.75);
    }

    #[test]
    fn mapping_accuracy_perfect_case() {
        let pred = vec![5, 5, 9, 9];
        let truth = vec!["a", "a", "b", "b"];
        assert_eq!(mapping_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn mapping_accuracy_fifty_fifty_split() {
        // The Proxifier case: an even split keeps only one half.
        let pred = vec![0, 0, 1, 1];
        let truth = vec!["a", "a", "a", "a"];
        assert_eq!(mapping_accuracy(&pred, &truth), 0.5);
    }

    #[test]
    fn proxifier_style_fifty_percent() {
        // One event whose messages land in two patterns of equal size —
        // the paper's "nearly 50% of the results invalid" — scores 0 for
        // that event (both halves are incomplete groups).
        let pred = vec![0, 0, 1, 1, 7];
        let truth = vec!["a", "a", "a", "a", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.2);
    }
}
