//! The parsing-accuracy metric of Zhu et al. (ICSE-SEIP 2019), as used by
//! the paper.
//!
//! "They measured the accuracy using the ratio of correctly parsed log
//! messages over the total number of log messages." A message is *correctly
//! parsed* when the event its parser assigned groups together exactly the
//! same set of messages as the ground-truth event — the strict *group
//! accuracy* definition: over-splitting an event or merging two events
//! marks every affected message wrong.

use std::collections::HashMap;

/// Compute group accuracy.
///
/// `predicted` and `truth` give, for each message, its predicted cluster id
/// and ground-truth event label. Returns the fraction of messages whose
/// predicted cluster is a *perfect* reconstruction of their true event.
pub fn group_accuracy<P, T>(predicted: &[P], truth: &[T]) -> f64
where
    P: std::hash::Hash + Eq + Clone,
    T: std::hash::Hash + Eq + Clone,
{
    assert_eq!(
        predicted.len(),
        truth.len(),
        "assignment/label length mismatch"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    // Sizes of each true event and each predicted cluster.
    let mut truth_sizes: HashMap<&T, usize> = HashMap::new();
    for t in truth {
        *truth_sizes.entry(t).or_insert(0) += 1;
    }
    let mut pred_sizes: HashMap<&P, usize> = HashMap::new();
    for p in predicted {
        *pred_sizes.entry(p).or_insert(0) += 1;
    }
    // Joint counts.
    let mut joint: HashMap<(&P, &T), usize> = HashMap::new();
    for (p, t) in predicted.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
    }
    // A predicted cluster P is correct iff it consists of exactly one truth
    // label T and |P| == |T| (it captured the whole event and nothing else).
    let mut correct = 0usize;
    for ((p, t), &n) in &joint {
        if pred_sizes[p] == n && truth_sizes[t] == n {
            correct += n;
        }
    }
    correct as f64 / predicted.len() as f64
}

/// Compute *mapping accuracy*: the metric the Sequence-RTG authors describe
/// for Table II.
///
/// The paper's artifact maps each Sequence-RTG pattern id to a ground-truth
/// event label ("a CSV file for each service to map Sequence-RTG patternids
/// to the corresponding labels") and scores "if the event label in the
/// pre-processed file matches the event determined by the tool". That is a
/// one-to-one assignment between predicted clusters and true events: each
/// event keeps its single best pattern; messages in secondary patterns of a
/// split event count as wrong (hence Proxifier's "nearly 50% of the results
/// invalid"), and a merged cluster can only be right for one of its events.
///
/// Implemented as a greedy maximum-overlap one-to-one matching (largest
/// joint counts first), which is exact for the dominant-diagonal confusion
/// matrices log parsers produce.
pub fn mapping_accuracy<P, T>(predicted: &[P], truth: &[T]) -> f64
where
    P: std::hash::Hash + Eq + Clone,
    T: std::hash::Hash + Eq + Clone,
{
    assert_eq!(
        predicted.len(),
        truth.len(),
        "assignment/label length mismatch"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let mut joint: HashMap<(&P, &T), usize> = HashMap::new();
    for (p, t) in predicted.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
    }
    let mut pairs: Vec<((&P, &T), usize)> = joint.into_iter().collect();
    // Deterministic order: overlap descending, then stable by insertion via
    // full re-sort on counts only is ambiguous — break ties by comparing the
    // first message index of each pair.
    let mut first_index: HashMap<(&P, &T), usize> = HashMap::new();
    for (i, (p, t)) in predicted.iter().zip(truth).enumerate() {
        first_index.entry((p, t)).or_insert(i);
    }
    pairs.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(first_index[&a.0].cmp(&first_index[&b.0]))
    });
    let mut used_p: std::collections::HashSet<&P> = std::collections::HashSet::new();
    let mut used_t: std::collections::HashSet<&T> = std::collections::HashSet::new();
    let mut correct = 0usize;
    for ((p, t), n) in pairs {
        if used_p.contains(p) || used_t.contains(t) {
            continue;
        }
        used_p.insert(p);
        used_t.insert(t);
        correct += n;
    }
    correct as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_grouping() {
        let pred = vec![0, 0, 1, 1, 2];
        let truth = vec!["a", "a", "b", "b", "c"];
        assert_eq!(group_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn cluster_ids_do_not_matter() {
        let pred = vec![9, 9, 4, 4];
        let truth = vec!["a", "a", "b", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn split_event_counts_all_members_wrong() {
        // Event `a` split across clusters 0 and 1: all three `a` messages
        // are wrong; `b` stays right.
        let pred = vec![0, 0, 1, 2];
        let truth = vec!["a", "a", "a", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.25);
    }

    #[test]
    fn merged_events_count_both_wrong() {
        let pred = vec![0, 0, 0, 0];
        let truth = vec!["a", "a", "b", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.0);
    }

    #[test]
    fn partial_credit_mixture() {
        // Cluster 0 = all of a (correct, 2 msgs); clusters 1,2 split b.
        let pred = vec![0, 0, 1, 2, 2];
        let truth = vec!["a", "a", "b", "b", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.4);
    }

    #[test]
    fn empty_input() {
        let pred: Vec<u32> = vec![];
        let truth: Vec<&str> = vec![];
        assert_eq!(group_accuracy(&pred, &truth), 0.0);
    }

    #[test]
    fn mapping_accuracy_gives_majority_credit_on_splits() {
        // Event `a` split 3/1 across clusters 0 and 1: the majority pattern
        // keeps its 3 messages (strict GA would score all four wrong).
        let pred = vec![0, 0, 0, 1, 2];
        let truth = vec!["a", "a", "a", "a", "b"];
        assert_eq!(mapping_accuracy(&pred, &truth), 0.8);
        assert_eq!(group_accuracy(&pred, &truth), 0.2);
    }

    #[test]
    fn mapping_accuracy_punishes_merges_once() {
        // Events a (3 msgs) and b (1 msg) merged: cluster maps to a.
        let pred = vec![0, 0, 0, 0];
        let truth = vec!["a", "a", "a", "b"];
        assert_eq!(mapping_accuracy(&pred, &truth), 0.75);
    }

    #[test]
    fn mapping_accuracy_perfect_case() {
        let pred = vec![5, 5, 9, 9];
        let truth = vec!["a", "a", "b", "b"];
        assert_eq!(mapping_accuracy(&pred, &truth), 1.0);
    }

    #[test]
    fn mapping_accuracy_fifty_fifty_split() {
        // The Proxifier case: an even split keeps only one half.
        let pred = vec![0, 0, 1, 1];
        let truth = vec!["a", "a", "a", "a"];
        assert_eq!(mapping_accuracy(&pred, &truth), 0.5);
    }

    #[test]
    fn proxifier_style_fifty_percent() {
        // One event whose messages land in two patterns of equal size —
        // the paper's "nearly 50% of the results invalid" — scores 0 for
        // that event (both halves are incomplete groups).
        let pred = vec![0, 0, 1, 1, 7];
        let truth = vec!["a", "a", "a", "a", "b"];
        assert_eq!(group_accuracy(&pred, &truth), 0.2);
    }
}
