//! Fig. 7: a discrete-event simulation of the CC-IN2P3 production
//! deployment.
//!
//! The workflow of the paper's Fig. 6: syslog-ng matches every message
//! against the *promoted* pattern database; only unmatched messages are
//! piped to Sequence-RTG, which mines candidate patterns continuously.
//! "System administrators are still involved in the review and promotion
//! process": every few days an administrator reviews the candidates and
//! promotes the strong ones into the pattern database.
//!
//! Starting point matches the paper — "the percentage of unknown messages
//! was sitting around 75-80%" — and over 60 simulated days the unmatched
//! fraction should decay to ≈15%. The residual floor is modelled by a
//! fraction of *unique noise* messages (one-off events that never repeat,
//! which the save threshold rightly never promotes).

use loghub_synth::{generate_stream, CorpusConfig};
use seqd::Ops;
use sequence_core::{PatternSet, Scanner};
use sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use testkit::rng::Rng;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Days to simulate (the paper's Fig. 7 spans 60).
    pub days: usize,
    /// Messages per simulated day (scaled down from the paper's 70–100 M).
    pub daily_messages: usize,
    /// Virtual services in the stream.
    pub services: usize,
    /// Days between administrator review/promotion sessions.
    pub review_interval: usize,
    /// Save threshold: candidates below this match count are never offered
    /// for promotion.
    pub promote_min_count: u64,
    /// Candidates above this complexity score are rejected at review.
    pub promote_max_complexity: f64,
    /// Probability a reviewed candidate is promoted ("the most correct
    /// pattern would be promoted and the other discarded").
    pub acceptance: f64,
    /// Fraction of daily volume that is unique one-off noise (never
    /// promotable; sets the residual unmatched floor).
    pub noise_fraction: f64,
    /// Fraction of day-0 volume the pre-existing hand-maintained pattern
    /// database already matches (the paper: 20–25%).
    pub initial_coverage: f64,
    /// Sequence-RTG batch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            days: 60,
            daily_messages: 8_000,
            services: 60,
            review_interval: 3,
            promote_min_count: 3,
            promote_max_complexity: 0.95,
            acceptance: 0.9,
            noise_fraction: 0.13,
            initial_coverage: 0.22,
            batch_size: 4_000,
            seed: 11,
        }
    }
}

/// Per-day outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayStats {
    /// Day index (1-based).
    pub day: usize,
    /// Messages received.
    pub received: usize,
    /// Messages matched by the promoted pattern database.
    pub matched: usize,
    /// Unmatched percentage (the Fig. 7 y-axis).
    pub unmatched_pct: f64,
    /// Promoted patterns in the database at end of day.
    pub promoted_patterns: usize,
    /// Candidate patterns in the Sequence-RTG store at end of day.
    pub candidate_patterns: u64,
    /// Minutes to fill one Sequence-RTG batch at this day's unmatched rate,
    /// calibrated so day 1 ≈ 15 minutes (paper §IV).
    pub batch_fill_minutes: f64,
}

/// Run the 60-day simulation.
pub fn simulate(config: SimConfig) -> Vec<DayStats> {
    simulate_with_ops(config, &Ops::new())
}

/// Run the simulation while populating the same [`Ops`] counters the `seqd`
/// daemon exposes on `/metrics`: a dashboard built against
/// `ops.snapshot().render_prometheus(&[])` here works unchanged against a
/// live deployment. In the simulation nothing is queued or malformed, so
/// after the run `ingested = matched + unmatched` and the snapshot
/// reconciles exactly.
pub fn simulate_with_ops(config: SimConfig, ops: &Ops) -> Vec<DayStats> {
    // Share the daemon's stage histograms: the sim populates the same
    // `obs` registry series a live `seqd` exports, so latency dashboards
    // port across simulation and deployment exactly like the counters do.
    seqd::metrics::stages::preregister();
    let line_hist = seqd::metrics::stages::ingest_line();
    let match_hist = seqd::metrics::stages::match_record();
    let mut rng = Rng::seed_from_u64(config.seed);
    let scanner = Scanner::new();
    let mut scratch = sequence_core::MatchScratch::default();
    let mut promoted: HashMap<String, PatternSet> = HashMap::new();
    let mut promoted_ids: HashSet<String> = HashSet::new();
    let mut rtg = SequenceRtg::in_memory(RtgConfig {
        batch_size: config.batch_size,
        save_threshold: 2,
        ..RtgConfig::default()
    });

    // Bootstrap: the hand-maintained pattern database that existed before
    // Sequence-RTG. Mine a sample and promote the most frequent patterns
    // until they cover ~initial_coverage of the volume.
    bootstrap_promoted(&config, &mut promoted, &mut promoted_ids);

    let mut out = Vec::with_capacity(config.days);
    let mut day_one_unmatched_rate: Option<f64> = None;
    for day in 1..=config.days {
        let day_seed = config.seed.wrapping_add(day as u64 * 104_729);
        let stream = generate_stream(CorpusConfig {
            services: config.services,
            total: config.daily_messages,
            seed: day_seed,
        });
        let mut matched = 0usize;
        let mut unmatched_records: Vec<LogRecord> = Vec::new();
        for (i, item) in stream.iter().enumerate() {
            Ops::inc(&ops.ingested);
            let line_started = Instant::now();
            // Inject unique noise in place of a slice of the volume.
            let is_noise = rng.gen_bool(config.noise_fraction);
            if is_noise {
                let msg = noise_message(&mut rng, day, i);
                // Noise never matches the promoted database.
                Ops::inc(&ops.unmatched);
                unmatched_records.push(LogRecord::new("misc", msg));
                // One histogram sample per ingested message, exactly as the
                // daemon records — `_count` reconciles with `ingested`.
                line_hist.record(line_started.elapsed());
                continue;
            }
            // Parse-only: the raw text is never needed again, so skip the
            // raw copy and reuse the trie-walk scratch across the stream.
            let scanned = scanner.scan_parse_only(&item.message);
            let hit = promoted
                .get(&item.service)
                .and_then(|set| set.match_message_with(&scanned, &mut scratch))
                .is_some();
            match_hist.record(line_started.elapsed());
            if hit {
                matched += 1;
                Ops::inc(&ops.matched);
            } else {
                Ops::inc(&ops.unmatched);
                unmatched_records
                    .push(LogRecord::new(item.service.as_str(), item.message.as_str()));
            }
            line_hist.record(line_started.elapsed());
        }
        // The unmatched stream feeds Sequence-RTG, batch by batch.
        for chunk in unmatched_records.chunks(config.batch_size) {
            let started = Instant::now();
            rtg.analyze_by_service(chunk, day as u64)
                .expect("in-memory analysis");
            ops.record_remine(started.elapsed());
        }
        // Review + promotion session — the simulation's analogue of the
        // daemon's pattern-set publication.
        if day % config.review_interval == 0 {
            review_and_promote(
                &config,
                &mut rng,
                &mut rtg,
                &mut promoted,
                &mut promoted_ids,
            );
            Ops::inc(&ops.swaps);
        }
        let received = stream.len();
        let unmatched = received - matched;
        let unmatched_rate = unmatched as f64 / received as f64;
        let base = *day_one_unmatched_rate.get_or_insert(unmatched_rate);
        out.push(DayStats {
            day,
            received,
            matched,
            unmatched_pct: 100.0 * unmatched_rate,
            promoted_patterns: promoted_ids.len(),
            candidate_patterns: rtg.store_mut().pattern_count().expect("count"),
            // Fill time scales inversely with the unmatched inflow;
            // calibrated to the paper's ~15 minutes on day 1.
            batch_fill_minutes: 15.0 * base / unmatched_rate.max(1e-6),
        });
    }
    out
}

fn noise_message(rng: &mut Rng, day: usize, i: usize) -> String {
    let words = [
        "ephemeral",
        "oddity",
        "glitch",
        "spurious",
        "transient",
        "anomalous",
    ];
    format!(
        "{} condition 0x{:08x} at unit {} ref {}-{}-{}",
        words[rng.gen_range(0..words.len())],
        rng.u32(),
        rng.gen_range(0..512),
        day,
        i,
        rng.u16(),
    )
}

/// Build the pre-existing hand-maintained pattern database.
fn bootstrap_promoted(
    config: &SimConfig,
    promoted: &mut HashMap<String, PatternSet>,
    promoted_ids: &mut HashSet<String>,
) {
    let sample = generate_stream(CorpusConfig {
        services: config.services,
        total: config.daily_messages,
        seed: config.seed.wrapping_mul(31),
    });
    let records: Vec<LogRecord> = sample
        .iter()
        .map(|item| LogRecord::new(item.service.as_str(), item.message.as_str()))
        .collect();
    let mut miner = SequenceRtg::in_memory(RtgConfig::default());
    miner
        .analyze_by_service(&records, 0)
        .expect("bootstrap analysis");
    let mut patterns = miner
        .store_mut()
        .patterns(None)
        .expect("bootstrap patterns");
    patterns.sort_by(|a, b| b.count.cmp(&a.count));
    // Account for the noise share that will exist in real days: target
    // coverage applies to the non-noise volume.
    let target = (config.initial_coverage * sample.len() as f64) as u64;
    let mut covered = 0u64;
    for p in patterns {
        if covered >= target {
            break;
        }
        if let Ok(parsed) = p.pattern() {
            covered += p.count;
            promoted
                .entry(p.service.clone())
                .or_default()
                .insert(p.id.clone(), parsed);
            promoted_ids.insert(p.id);
        }
    }
}

/// An administrator review session, using the `patterndb::review` workflow:
/// walk the priority-ordered queue, resolve multi-match conflicts ("the most
/// correct pattern would be promoted and the other discarded"), and promote
/// strong candidates with the configured acceptance probability.
fn review_and_promote(
    config: &SimConfig,
    rng: &mut Rng,
    rtg: &mut SequenceRtg,
    promoted: &mut HashMap<String, PatternSet>,
    promoted_ids: &mut HashSet<String>,
) {
    // Resolve multi-match conflicts first, as the paper's review does.
    let candidates = rtg.store_mut().patterns(None).expect("candidates");
    let conflicts = patterndb::find_conflicts(&candidates);
    let mut discarded: HashSet<String> = HashSet::new();
    for c in conflicts {
        if discarded.contains(&c.pattern_a) || discarded.contains(&c.pattern_b) {
            continue;
        }
        if let Ok((_winner, loser)) = patterndb::resolve_conflict(rtg.store_mut(), &c) {
            discarded.insert(loser);
        }
    }
    // Then promote from the priority queue.
    let queue = patterndb::ReviewQueue::build(rtg.store_mut()).expect("queue");
    let decisions: Vec<(String, String, Option<sequence_core::Pattern>)> = queue
        .items()
        .iter()
        .filter(|item| {
            !promoted_ids.contains(&item.pattern.id)
                && item.pattern.count >= config.promote_min_count
                && item.pattern.complexity <= config.promote_max_complexity
        })
        .map(|item| {
            (
                item.pattern.id.clone(),
                item.pattern.service.clone(),
                item.pattern.pattern().ok(),
            )
        })
        .collect();
    for (id, service, parsed) in decisions {
        if !rng.gen_bool(config.acceptance) {
            continue;
        }
        if let Some(parsed) = parsed {
            rtg.store_mut().promote(&id).expect("promote");
            promoted
                .entry(service)
                .or_default()
                .insert(id.clone(), parsed);
            promoted_ids.insert(id);
        }
    }
}

/// Render the day series as an aligned text table (one row per sampled day).
pub fn render_fig7(stats: &[DayStats], every: usize) -> String {
    let mut out = String::new();
    out.push_str("Fig. 7 — unmatched message ratio after introducing Sequence-RTG\n");
    out.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>12} {:>10} {:>11} {:>10}\n",
        "day", "received", "matched", "unmatched %", "promoted", "candidates", "fill(min)"
    ));
    for s in stats.iter().filter(|s| s.day == 1 || s.day % every == 0) {
        out.push_str(&format!(
            "{:>4} {:>10} {:>10} {:>12.1} {:>10} {:>11} {:>10.1}\n",
            s.day,
            s.received,
            s.matched,
            s.unmatched_pct,
            s.promoted_patterns,
            s.candidate_patterns,
            s.batch_fill_minutes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SimConfig {
        SimConfig {
            days: 12,
            daily_messages: 1_500,
            services: 20,
            review_interval: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn unmatched_ratio_decays() {
        let stats = simulate(small_config());
        assert_eq!(stats.len(), 12);
        let first = stats[0].unmatched_pct;
        let last = stats.last().unwrap().unmatched_pct;
        assert!(first > 55.0, "day-1 unmatched should be high: {first}");
        assert!(
            last < first - 20.0,
            "should decay substantially: {first} -> {last}"
        );
    }

    #[test]
    fn noise_floor_holds() {
        let mut cfg = small_config();
        cfg.days = 16;
        let stats = simulate(cfg);
        let last = stats.last().unwrap().unmatched_pct;
        // The unique-noise share (13%) can never be promoted away.
        assert!(last >= 10.0, "floor from unique noise: {last}");
    }

    #[test]
    fn promotions_accumulate_and_fill_time_grows() {
        let stats = simulate(small_config());
        let first = &stats[0];
        let last = stats.last().unwrap();
        assert!(last.promoted_patterns > first.promoted_patterns);
        assert!(last.batch_fill_minutes > first.batch_fill_minutes);
    }

    #[test]
    fn deterministic() {
        let a = simulate(small_config());
        let b = simulate(small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn ops_reconcile_and_share_the_daemon_metric_names() {
        let ops = Ops::new();
        let stats = simulate_with_ops(small_config(), &ops);
        let s = ops.snapshot();
        // Every simulated message is accounted for: the sim has no queues
        // and no malformed input, so the daemon invariant holds exactly.
        assert!(s.reconciles(), "{s:?}");
        assert_eq!(s.rejected, 0);
        assert_eq!(s.malformed, 0);
        let total: u64 = stats.iter().map(|d| d.received as u64).sum();
        assert_eq!(s.ingested, total);
        let matched: u64 = stats.iter().map(|d| d.matched as u64).sum();
        assert_eq!(s.matched, matched);
        assert!(s.remines > 0);
        assert!(s.swaps > 0);
        // Identical metric names as a live daemon's /metrics (same renderer,
        // same series), so dashboards port across sim and deployment.
        let text = s.render_prometheus(&[]);
        for series in [
            "seqd_ingested_total",
            "seqd_matched_total",
            "seqd_unmatched_total",
            "seqd_rejected_total",
            "seqd_malformed_total",
            "seqd_pattern_swaps_total",
            "seqd_remine_runs_total",
            "seqd_remine_seconds_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        // The latency side ports too: the sim populates the same `obs`
        // registry histograms the daemon exports, under the same names, and
        // the combined exposition parses cleanly.
        let hist_text = obs::registry().render_prometheus();
        let combined = format!("{text}{hist_text}");
        let errors = obs::promlint::lint(&combined);
        assert!(errors.is_empty(), "promlint: {errors:?}");
        let names = obs::promlint::metric_names(&hist_text);
        for required in [
            "seqd_ingest_line_seconds",
            "seqd_match_seconds",
            "rtg_analyze_seconds",
            "rtg_scan_seconds",
            "rtg_parse_seconds",
            "patterndb_txn_seconds",
            "core_scan_seconds",
            "core_match_seconds",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
        // Per-line recording mirrors the daemon exactly: one ingest-line
        // sample per ingested message. Other tests in this process share the
        // global registry, so assert "at least" rather than equality.
        let snap = obs::registry()
            .snapshot("seqd_ingest_line_seconds")
            .expect("preregistered");
        assert!(snap.count >= s.ingested, "{} < {}", snap.count, s.ingested);
    }

    #[test]
    fn render_contains_sampled_days() {
        let stats = simulate(small_config());
        let table = render_fig7(&stats, 4);
        assert!(table.contains("unmatched %"));
        assert!(table.lines().count() >= 4);
    }
}
