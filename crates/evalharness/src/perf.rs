//! Fig. 5: processing time of `Analyze` vs `AnalyzeByService` as the data
//! set grows.
//!
//! "The tests were run with an empty pattern database, so all records would
//! be sent for analysis. [...] we want to measure the maximum likely running
//! time in this experiment." The datasets "contained an average of 241
//! unique services".

use loghub_synth::{generate_stream, CorpusConfig};
use sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};
use std::time::Instant;

/// One measurement row of the Fig. 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Data set size (records).
    pub size: usize,
    /// Seminal `Analyze` wall time, seconds (single mixed analysis).
    pub analyze_secs: f64,
    /// `AnalyzeByService` wall time, seconds.
    pub analyze_by_service_secs: f64,
    /// Patterns discovered by `AnalyzeByService` (sanity signal).
    pub patterns: u64,
    /// Total analysis-trie nodes allocated by the mixed `Analyze` path —
    /// the quantity the paper blames for the degradation ("the load induced
    /// by having a very large analyser trie to store in memory").
    pub mixed_trie_nodes: usize,
    /// Largest single-service trie allocation under `AnalyzeByService`
    /// (bounded by the biggest service, not the whole batch).
    pub max_service_trie_nodes: usize,
}

/// Run the Fig. 5 sweep. Every size gets a fresh engine with an empty
/// pattern database, exactly like the paper's setup.
pub fn run_fig5(sizes: &[usize], services: usize, seed: u64) -> Vec<Fig5Row> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let stream = generate_stream(CorpusConfig {
            services,
            total: size,
            seed,
        });
        let records: Vec<LogRecord> = stream
            .iter()
            .map(|item| LogRecord::new(item.service.as_str(), item.message.as_str()))
            .collect();

        let mut seminal = SequenceRtg::in_memory(RtgConfig::seminal());
        let t0 = Instant::now();
        seminal
            .analyze_all(&records, 0)
            .expect("in-memory analysis");
        let analyze_secs = t0.elapsed().as_secs_f64();

        let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
        let t1 = Instant::now();
        let report = rtg
            .analyze_by_service(&records, 0)
            .expect("in-memory analysis");
        let analyze_by_service_secs = t1.elapsed().as_secs_f64();

        // Memory accounting: size of the pre-merge analysis tries.
        let analyzer = sequence_core::Analyzer::new();
        let scanner = sequence_core::Scanner::new();
        let mut scanned_all = Vec::with_capacity(records.len());
        let mut by_service: std::collections::HashMap<&str, Vec<sequence_core::TokenizedMessage>> =
            std::collections::HashMap::new();
        for r in &records {
            // Node counting never looks at the raw text; skip the copy.
            let t = scanner.scan_parse_only(&r.message);
            by_service
                .entry(r.service.as_str())
                .or_default()
                .push(t.clone());
            scanned_all.push(t);
        }
        let mixed_trie_nodes = analyzer.trie_node_count(&scanned_all);
        let max_service_trie_nodes = by_service
            .values()
            .map(|msgs| analyzer.trie_node_count(msgs))
            .max()
            .unwrap_or(0);

        rows.push(Fig5Row {
            size,
            analyze_secs,
            analyze_by_service_secs,
            patterns: report.new_patterns,
            mixed_trie_nodes,
            max_service_trie_nodes,
        });
    }
    rows
}

/// The default size sweep: scaled from the paper's 0.25M–13.25M range down
/// to laptop-friendly sizes while preserving the growth shape.
pub const DEFAULT_SIZES: [usize; 6] = [10_000, 25_000, 50_000, 100_000, 250_000, 500_000];

/// Render the rows as an aligned text table.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — processing time vs data set size (empty pattern database)\n");
    out.push_str(&format!(
        "{:>10} {:>13} {:>19} {:>9} {:>8} {:>13} {:>15}\n",
        "records",
        "Analyze (s)",
        "AnalyzeBySvc (s)",
        "patterns",
        "speedup",
        "mixed trie",
        "max svc trie"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>13.3} {:>19.3} {:>9} {:>8.2} {:>13} {:>15}\n",
            r.size,
            r.analyze_secs,
            r.analyze_by_service_secs,
            r.patterns,
            r.analyze_secs / r.analyze_by_service_secs.max(1e-9),
            r.mixed_trie_nodes,
            r.max_service_trie_nodes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_runs_and_counts_patterns() {
        let rows = run_fig5(&[500, 1_000], 24, 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.analyze_secs > 0.0 && r.analyze_by_service_secs > 0.0);
            assert!(r.patterns > 10, "found {} patterns", r.patterns);
        }
        let table = render_fig5(&rows);
        assert!(table.contains("AnalyzeBySvc"));
        // Memory accounting: a mixed trie is at least as large as the
        // biggest per-service trie.
        for r in &rows {
            assert!(r.mixed_trie_nodes >= r.max_service_trie_nodes);
            assert!(r.max_service_trie_nodes > 0);
        }
    }
}
