//! # evalharness
//!
//! Experiment drivers that regenerate every table and figure of the
//! Sequence-RTG paper's evaluation (§IV):
//!
//! | Paper artefact | Module / binary |
//! |---|---|
//! | Fig. 5 (Analyze vs AnalyzeByService time) | [`perf`], `cargo run --release -p evalharness --bin fig5` |
//! | Table II (accuracy, pre-processed + raw vs best) | [`runner`], `--bin table2` |
//! | Table III (AEL / IPLoM / Spell / Drain accuracy) | [`runner`], `--bin table3` |
//! | Fig. 7 (unmatched-ratio evolution over 60 days) | [`production`], `--bin fig7` |
//! | §IV in-text production stats (batch runtime, fill time) | `--bin prod_stats` |
//!
//! The metric is the strict *group accuracy* of Zhu et al. ([`accuracy`]);
//! the corpora are the synthetic LogHub stand-ins from `loghub-synth`;
//! published reference values are embedded in [`runner::paper`] so each
//! binary prints paper-vs-measured side by side.

#![warn(missing_docs)]

pub mod accuracy;
pub mod harness;
pub mod perf;
pub mod production;
pub mod runner;

pub use accuracy::{group_accuracy, mapping_accuracy, template_prf, TemplateScore};
pub use harness::{score_families, score_family, FamilyAccuracy};
pub use perf::{run_fig5, Fig5Row, DEFAULT_SIZES};
pub use production::{simulate, DayStats, SimConfig};
pub use runner::{baseline_accuracy, rtg_accuracy, rtg_assignments, Variant};

/// The number of lines per accuracy dataset (matching LogHub's 2k samples).
pub const DATASET_LINES: usize = 2000;

/// The seed used by the experiment binaries (fixed for reproducibility).
pub const DEFAULT_SEED: u64 = 20210906;
