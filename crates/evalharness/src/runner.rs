//! Run Sequence-RTG and the baselines over the synthetic LogHub datasets and
//! score them (Tables II and III).

use crate::accuracy::group_accuracy;
use baselines::BatchParser;
use loghub_synth::Dataset;
use sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};

/// Which text variant of a dataset to feed the tool under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// LogHub-style pre-processed content (common fields masked as `<*>`),
    /// as used by Zhu et al. and the first column of Table II.
    Preprocessed,
    /// "The full and unaltered log messages [...] coming directly from
    /// their production source" — header plus content (Table II, column 2).
    Raw,
}

/// Extract the lines of the chosen variant.
pub fn variant_lines(dataset: &Dataset, variant: Variant) -> Vec<String> {
    dataset
        .lines
        .iter()
        .map(|l| match variant {
            Variant::Preprocessed => l.preprocessed.clone(),
            Variant::Raw => l.raw.clone(),
        })
        .collect()
}

/// Ground-truth labels of a dataset.
pub fn truth_labels(dataset: &Dataset) -> Vec<&str> {
    dataset.lines.iter().map(|l| l.event.as_str()).collect()
}

/// Run Sequence-RTG over one dataset variant and return its per-message
/// event assignment, following the paper's methodology: mine patterns from
/// the whole file (empty pattern database), then match every message with
/// the parser; the matched pattern id is the event assignment.
pub fn rtg_assignments(dataset: &Dataset, variant: Variant, config: RtgConfig) -> Vec<String> {
    let lines = variant_lines(dataset, variant);
    let records: Vec<LogRecord> = lines
        .iter()
        .map(|m| LogRecord::new(dataset.name, m.as_str()))
        .collect();
    let mut rtg = SequenceRtg::in_memory(config);
    rtg.analyze_by_service(&records, 0)
        .expect("in-memory analysis cannot fail");
    // Parse step: match each message against the final pattern set.
    let scanner = sequence_core::Scanner::with_options(config.scanner);
    let sets = rtg.store_mut().load_pattern_sets().expect("load sets").0;
    let set = sets.get(dataset.name).cloned().unwrap_or_default();
    let mut scratch = sequence_core::MatchScratch::default();
    lines
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let msg = scanner.scan_parse_only(m);
            match set.match_message_with(&msg, &mut scratch) {
                Some(outcome) => outcome.pattern_id,
                None => format!("unmatched-{i}"),
            }
        })
        .collect()
}

/// Sequence-RTG accuracy on one dataset variant, using the paper's
/// pattern-id-to-label *mapping accuracy* (see
/// [`crate::accuracy::mapping_accuracy`] for why Table II uses this rather
/// than the strict group accuracy).
pub fn rtg_accuracy(dataset: &Dataset, variant: Variant, config: RtgConfig) -> f64 {
    let assignments = rtg_assignments(dataset, variant, config);
    crate::accuracy::mapping_accuracy(&assignments, &truth_labels(dataset))
}

/// Sequence-RTG accuracy under the strict group-accuracy metric (for
/// metric-sensitivity reporting).
pub fn rtg_group_accuracy(dataset: &Dataset, variant: Variant, config: RtgConfig) -> f64 {
    let assignments = rtg_assignments(dataset, variant, config);
    group_accuracy(&assignments, &truth_labels(dataset))
}

/// A baseline parser's accuracy on the pre-processed variant (the setting of
/// Zhu et al. and Table III).
pub fn baseline_accuracy(parser: &dyn BatchParser, dataset: &Dataset) -> f64 {
    let lines = variant_lines(dataset, Variant::Preprocessed);
    let result = parser.parse_batch(&lines);
    group_accuracy(&result.assignments, &truth_labels(dataset))
}

/// Published reference values, for side-by-side reporting in the
/// experiment binaries and EXPERIMENTS.md.
pub mod paper {
    /// Table II: (dataset, pre-processed, raw, best-of-13).
    pub const TABLE2: [(&str, f64, f64, f64); 16] = [
        ("HDFS", 0.941, 0.942, 1.0),
        ("Hadoop", 0.975, 0.898, 0.957),
        ("Spark", 0.979, 0.979, 0.994),
        ("Zookeeper", 0.971, 0.977, 0.967),
        ("OpenStack", 0.794, 0.825, 0.871),
        ("BGL", 0.948, 0.948, 0.963),
        ("HPC", 0.739, 0.801, 0.903),
        ("Thunderbird", 0.971, 0.969, 0.955),
        ("Windows", 0.993, 0.993, 0.997),
        ("Linux", 0.702, 0.701, 0.701),
        ("Mac", 0.925, 0.924, 0.872),
        ("Android", 0.878, 0.880, 0.919),
        ("HealthApp", 0.968, 0.689, 0.822),
        ("Apache", 1.0, 1.0, 1.0),
        ("OpenSSH", 0.975, 0.975, 0.925),
        ("Proxifier", 0.643, 0.402, 0.967),
    ];

    /// Table III: (dataset, AEL, IPLoM, Spell, Drain) from Zhu et al.
    pub const TABLE3: [(&str, f64, f64, f64, f64); 16] = [
        ("HDFS", 0.998, 1.0, 1.0, 0.998),
        ("Hadoop", 0.538, 0.954, 0.778, 0.948),
        ("Spark", 0.905, 0.920, 0.905, 0.920),
        ("Zookeeper", 0.921, 0.962, 0.964, 0.967),
        ("OpenStack", 0.758, 0.871, 0.764, 0.733),
        ("BGL", 0.758, 0.939, 0.787, 0.963),
        ("HPC", 0.903, 0.824, 0.654, 0.887),
        ("Thunderbird", 0.941, 0.663, 0.844, 0.955),
        ("Windows", 0.690, 0.567, 0.989, 0.997),
        ("Linux", 0.673, 0.672, 0.605, 0.690),
        ("Mac", 0.764, 0.673, 0.757, 0.787),
        ("Android", 0.682, 0.712, 0.919, 0.911),
        ("HealthApp", 0.568, 0.822, 0.639, 0.780),
        ("Apache", 1.0, 1.0, 1.0, 1.0),
        ("OpenSSH", 0.538, 0.802, 0.554, 0.788),
        ("Proxifier", 0.518, 0.515, 0.527, 0.527),
    ];

    /// Table II average row.
    pub const TABLE2_AVG: (f64, f64, f64) = (0.901, 0.869, 0.865);
}

#[cfg(test)]
mod tests {
    use super::*;
    use loghub_synth::generate;

    #[test]
    fn rtg_scores_high_on_apache() {
        let d = generate("Apache", 500, 1);
        let acc = rtg_accuracy(&d, Variant::Preprocessed, RtgConfig::default());
        assert!(acc > 0.9, "Apache should be nearly perfect, got {acc}");
    }

    #[test]
    fn rtg_raw_vs_preprocessed_openssh() {
        let d = generate("OpenSSH", 800, 2);
        let pre = rtg_accuracy(&d, Variant::Preprocessed, RtgConfig::default());
        let raw = rtg_accuracy(&d, Variant::Raw, RtgConfig::default());
        assert!(pre > 0.7, "pre-processed OpenSSH {pre}");
        assert!(raw > 0.6, "raw OpenSSH {raw}");
    }

    #[test]
    fn proxifier_raw_drops_hard() {
        // The paper's documented type-flip limitation: raw Proxifier falls
        // to ~0.4 while other datasets stay high.
        let d = generate("Proxifier", 800, 3);
        let raw = rtg_accuracy(&d, Variant::Raw, RtgConfig::default());
        assert!(raw < 0.75, "Proxifier raw should drop, got {raw}");
    }

    #[test]
    fn baselines_score_reasonably_on_apache() {
        let d = generate("Apache", 500, 4);
        for parser in baselines::all_parsers() {
            let acc = baseline_accuracy(parser.as_ref(), &d);
            assert!(acc > 0.5, "{} on Apache: {acc}", parser.name());
        }
    }

    #[test]
    fn paper_tables_have_sixteen_rows() {
        assert_eq!(paper::TABLE2.len(), 16);
        assert_eq!(paper::TABLE3.len(), 16);
    }
}
