//! The LogHub-2.0 accuracy harness: per-family scoring of Sequence-RTG
//! (batch analyser and the online `PatternEvolver` path) against the four
//! in-tree baselines, over the statistically faithful
//! [`loghub_synth::loghub2`] corpora.
//!
//! Where [`crate::runner`] reproduces the paper's own Tables II/III on the
//! 2k-line LogHub samples, this module is the forward-looking quality
//! floor: every tool is scored on every one of the 14 LogHub-2.0 families
//! with grouping accuracy *and* template-level precision/recall/F1, the
//! rows are emitted as `results/BENCH_accuracy.json`, and `ci.sh` gates
//! Sequence-RTG's grouping accuracy against the frozen baseline.
//!
//! All tools are fed the same pre-processed variant (Zhu et al.'s masking),
//! so the comparison isolates grouping quality from masking quality.

use crate::accuracy::{group_accuracy, mapping_accuracy, template_prf, TemplateScore};
use crate::runner::{truth_labels, variant_lines, Variant};
use loghub_synth::loghub2;
use loghub_synth::Dataset;
use sequence_core::{evolve_corpus, EvolveOptions, MatchScratch, Scanner};
use sequence_rtg::RtgConfig;
use std::collections::HashSet;
use std::time::Instant;

/// Tool order of a family's result rows: Sequence-RTG batch, Sequence-RTG
/// online, then the baselines in [`baselines::all_parsers`] order.
pub const TOOL_COUNT: usize = 6;

/// One scored (family, tool) cell.
#[derive(Debug, Clone)]
pub struct FamilyAccuracy {
    /// LogHub-2.0 family name.
    pub family: &'static str,
    /// Tool under test (`sequence-rtg`, `sequence-rtg-online`, `ael`,
    /// `iplom`, `spell`, `drain`).
    pub tool: &'static str,
    /// Scored corpus size in lines.
    pub lines: usize,
    /// Template count of the family's generator catalog.
    pub catalog_templates: usize,
    /// Distinct ground-truth events that actually appear in the sample.
    pub observed_events: usize,
    /// Distinct groups the tool produced.
    pub found_groups: usize,
    /// Strict group accuracy (Zhu et al.).
    pub grouping_accuracy: f64,
    /// Greedy one-to-one mapping accuracy (the paper's Table II metric).
    pub mapping_accuracy: f64,
    /// Template-level precision/recall/F1.
    pub template: TemplateScore,
    /// Wall-clock scoring time for this cell, milliseconds.
    pub elapsed_ms: f64,
}

/// Score one tool's assignment vector against a dataset's ground truth.
fn score(
    family: &'static str,
    tool: &'static str,
    dataset: &Dataset,
    assignments: &[String],
    elapsed_ms: f64,
) -> FamilyAccuracy {
    let truth = truth_labels(dataset);
    let found: HashSet<&String> = assignments.iter().collect();
    let observed: HashSet<&&str> = truth.iter().collect();
    FamilyAccuracy {
        family,
        tool,
        lines: dataset.lines.len(),
        catalog_templates: dataset.event_count,
        observed_events: observed.len(),
        found_groups: found.len(),
        grouping_accuracy: group_accuracy(assignments, &truth),
        mapping_accuracy: mapping_accuracy(assignments, &truth),
        template: template_prf(assignments, &truth),
        elapsed_ms,
    }
}

/// Assign every line by matching it against a final pattern set (the
/// paper's parse step, shared by the batch and online Sequence-RTG paths).
fn assign_with_set(
    scanner: &Scanner,
    set: &sequence_core::PatternSet,
    lines: &[String],
) -> Vec<String> {
    let mut scratch = MatchScratch::default();
    lines
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let msg = scanner.scan_parse_only(m);
            match set.match_message_with(&msg, &mut scratch) {
                Some(outcome) => outcome.pattern_id,
                None => format!("unmatched-{i}"),
            }
        })
        .collect()
}

/// Sequence-RTG online assignments: stream the corpus through the
/// score-oriented [`sequence_core::evolve_corpus`] entry point (a fresh
/// `PatternEvolver`, no store in the loop) and assign every line against
/// the final published set.
pub fn rtg_online_assignments(dataset: &Dataset, config: RtgConfig) -> Vec<String> {
    let lines = variant_lines(dataset, Variant::Preprocessed);
    let scanner = Scanner::with_options(config.scanner);
    let opts = EvolveOptions {
        analyzer: config.analyzer,
        ..EvolveOptions::default()
    };
    let (set, _stats) = evolve_corpus(opts, &scanner, lines.iter().map(|s| s.as_str()));
    assign_with_set(&scanner, &set, &lines)
}

/// Score all six tools on one LogHub-2.0 family: a scaled-down fixed-seed
/// corpus of `lines` lines, pre-processed variant for every tool.
pub fn score_family(family: &str, lines_n: usize, seed: u64) -> Vec<FamilyAccuracy> {
    let dataset = loghub2::dataset(family, lines_n, seed);
    let family: &'static str = dataset.name;
    let lines = variant_lines(&dataset, Variant::Preprocessed);
    let config = RtgConfig::default();
    let mut rows = Vec::with_capacity(TOOL_COUNT);

    let t0 = Instant::now();
    let batch = crate::runner::rtg_assignments(&dataset, Variant::Preprocessed, config);
    rows.push(score(
        family,
        "sequence-rtg",
        &dataset,
        &batch,
        t0.elapsed().as_secs_f64() * 1e3,
    ));

    let t0 = Instant::now();
    let online = rtg_online_assignments(&dataset, config);
    rows.push(score(
        family,
        "sequence-rtg-online",
        &dataset,
        &online,
        t0.elapsed().as_secs_f64() * 1e3,
    ));

    for parser in baselines::all_parsers() {
        let t0 = Instant::now();
        let result = parser.parse_batch(&lines);
        let assignments: Vec<String> = result.assignments.iter().map(|a| a.to_string()).collect();
        rows.push(score(
            family,
            baseline_tool_name(parser.name()),
            &dataset,
            &assignments,
            t0.elapsed().as_secs_f64() * 1e3,
        ));
    }
    rows
}

/// Canonical lowercase tool slug for a baseline parser.
fn baseline_tool_name(name: &str) -> &'static str {
    match name {
        "AEL" => "ael",
        "IPLoM" => "iplom",
        "Spell" => "spell",
        "Drain" => "drain",
        other => panic!("unknown baseline parser {other}"),
    }
}

/// Score every family (or a subset) and return all rows in family-major,
/// tool-minor order.
pub fn score_families(families: &[&str], lines_n: usize, seed: u64) -> Vec<FamilyAccuracy> {
    let mut rows = Vec::with_capacity(families.len() * TOOL_COUNT);
    for family in families {
        rows.extend(score_family(family, lines_n, seed));
    }
    rows
}

/// Render result rows in the repo's flat JSON-lines format (one object per
/// line, fixed field order, sed-extractable — same conventions as
/// `results/BENCH_seqd.json`).
pub fn render_json(rows: &[FamilyAccuracy], lines_n: usize, seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"suite\":\"loghub2-accuracy\",\"lines_per_family\":{lines_n},\"seed\":{seed}}}\n"
    ));
    for r in rows {
        out.push_str(&format!(
            "{{\"id\":\"accuracy/{family}/{tool}\",\"family\":\"{family}\",\"tool\":\"{tool}\",\
             \"lines\":{lines},\"catalog_templates\":{cat},\"observed_events\":{obs},\
             \"found_groups\":{found},\"grouping_accuracy\":{ga:.4},\
             \"mapping_accuracy\":{ma:.4},\"precision\":{p:.4},\"recall\":{rc:.4},\
             \"f1\":{f1:.4},\"elapsed_ms\":{ms:.1}}}\n",
            family = r.family,
            tool = r.tool,
            lines = r.lines,
            cat = r.catalog_templates,
            obs = r.observed_events,
            found = r.found_groups,
            ga = r.grouping_accuracy,
            ma = r.mapping_accuracy,
            p = r.template.precision,
            rc = r.template.recall,
            f1 = r.template.f1,
            ms = r.elapsed_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apache_all_tools_produce_defined_scores() {
        // Small corpus: these run under `cargo test` in debug mode.
        let rows = score_family("Apache", 400, 1);
        assert_eq!(rows.len(), TOOL_COUNT);
        assert_eq!(rows[0].tool, "sequence-rtg");
        assert_eq!(rows[1].tool, "sequence-rtg-online");
        for r in &rows {
            assert!(
                r.grouping_accuracy.is_finite() && (0.0..=1.0).contains(&r.grouping_accuracy),
                "{}: {}",
                r.tool,
                r.grouping_accuracy
            );
            assert!(r.template.f1.is_finite());
            assert_eq!(r.lines, 400);
            assert_eq!(r.catalog_templates, 29);
        }
        // Sequence-RTG should do well on Apache's small catalog.
        assert!(
            rows[0].grouping_accuracy > 0.6,
            "batch: {}",
            rows[0].grouping_accuracy
        );
        assert!(
            rows[1].grouping_accuracy > 0.5,
            "online: {}",
            rows[1].grouping_accuracy
        );
    }

    #[test]
    fn online_path_groups_proxifier() {
        let d = loghub2::dataset("Proxifier", 300, 2);
        let a = rtg_online_assignments(&d, RtgConfig::default());
        assert_eq!(a.len(), 300);
        let ga = group_accuracy(&a, &truth_labels(&d));
        assert!(ga > 0.3, "online Proxifier grouping accuracy {ga}");
    }

    #[test]
    fn render_json_is_flat_and_sed_extractable() {
        let rows = score_family("Proxifier", 120, 3);
        let json = render_json(&rows, 120, 3);
        assert_eq!(json.lines().count(), 1 + TOOL_COUNT);
        for line in json.lines().skip(1) {
            assert!(line.starts_with("{\"id\":\"accuracy/Proxifier/"), "{line}");
            assert!(line.contains("\"grouping_accuracy\":"), "{line}");
            assert!(line.contains("\"f1\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn scores_are_deterministic_across_runs() {
        let a = score_family("OpenSSH", 200, 4);
        let b = score_family("OpenSSH", 200, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tool, y.tool);
            assert_eq!(x.grouping_accuracy, y.grouping_accuracy);
            assert_eq!(x.template.f1, y.template.f1);
        }
    }
}
