//! Regenerate Table III: accuracy of the four baseline parsers (AEL, IPLoM,
//! Spell, Drain) on the pre-processed datasets, with Zhu et al.'s published
//! values alongside.

use evalharness::runner::{baseline_accuracy, paper};
use evalharness::{DATASET_LINES, DEFAULT_SEED};
use loghub_synth::{generate, DATASET_NAMES};

fn main() {
    println!("Table III — baseline parser accuracy on pre-processed data");
    println!("Measured on this synthetic corpus | (published values in parentheses)\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}   {:>30}",
        "Dataset", "AEL", "IPLoM", "Spell", "Drain", "paper (AEL, IPLoM, Spell, Drain)"
    );
    let parsers = baselines::all_parsers();
    let mut sums = [0.0f64; 4];
    for (i, name) in DATASET_NAMES.iter().enumerate() {
        let d = generate(name, DATASET_LINES, DEFAULT_SEED);
        let accs: Vec<f64> = parsers
            .iter()
            .map(|p| baseline_accuracy(p.as_ref(), &d))
            .collect();
        for (s, a) in sums.iter_mut().zip(&accs) {
            *s += a;
        }
        let (pname, pael, piplom, pspell, pdrain) = paper::TABLE3[i];
        debug_assert_eq!(pname, *name);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   ({:.3}, {:.3}, {:.3}, {:.3})",
            name, accs[0], accs[1], accs[2], accs[3], pael, piplom, pspell, pdrain
        );
    }
    let n = DATASET_NAMES.len() as f64;
    println!(
        "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   ({:.3}, {:.3}, {:.3}, {:.3})",
        "Average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        0.754,
        0.777,
        0.751,
        0.865
    );
}
