//! Regenerate Fig. 5: Analyze vs AnalyzeByService processing time as the
//! data set grows (241 virtual services, empty pattern database).
//!
//! Usage: `fig5 [size ...]` — sizes default to the scaled sweep in
//! `evalharness::DEFAULT_SIZES`.

use evalharness::perf::{render_fig5, run_fig5, DEFAULT_SIZES};
use evalharness::DEFAULT_SEED;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes: Vec<usize> = if args.is_empty() {
        DEFAULT_SIZES.to_vec()
    } else {
        args
    };
    eprintln!("running Fig. 5 sweep over sizes {sizes:?} (241 services) ...");
    let rows = run_fig5(&sizes, 241, DEFAULT_SEED);
    print!("{}", render_fig5(&rows));
    println!("\nPaper shape check: AnalyzeByService should outperform Analyze, and");
    println!("Analyze's time should grow super-linearly at the largest sizes.");
}
