//! Regenerate Fig. 7: evolution of the unmatched-message ratio over 60 days
//! of simulated production at CC-IN2P3 (promoted pattern database + periodic
//! administrator review of Sequence-RTG candidates).

use evalharness::production::{render_fig7, simulate, SimConfig};

fn main() {
    let mut cfg = SimConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--days" => cfg.days = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.days),
            "--daily" => {
                cfg.daily_messages = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.daily_messages)
            }
            _ => {}
        }
    }
    eprintln!(
        "simulating {} days x {} messages/day across {} services ...",
        cfg.days, cfg.daily_messages, cfg.services
    );
    let stats = simulate(cfg);
    print!("{}", render_fig7(&stats, 3));
    let first = &stats[0];
    let last = stats.last().unwrap();
    println!(
        "\nday 1 unmatched: {:.1}%  ->  day {} unmatched: {:.1}%  (paper: 75-80% -> ~15%)",
        first.unmatched_pct, last.day, last.unmatched_pct
    );
}
