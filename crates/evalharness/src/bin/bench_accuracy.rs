//! `bench-accuracy` — score Sequence-RTG (batch + online) and the four
//! baselines on scaled-down fixed-seed LogHub-2.0 corpora, one JSON line
//! per (family, tool) cell.
//!
//! ```text
//! bench-accuracy [--lines N] [--seed S] [--families A,B,C] [--out PATH]
//! ```
//!
//! Defaults reproduce the recorded `results/BENCH_accuracy.json`
//! (`--lines 2000 --seed 20210906`, all 14 families). `ci.sh` runs this
//! binary live and gates the per-family `sequence-rtg` grouping accuracy
//! against the frozen `results/BENCH_accuracy.baseline.json`.

use evalharness::harness::{render_json, score_family};
use loghub_synth::loghub2::LOGHUB2_FAMILIES;

fn main() {
    let mut lines_n = evalharness::DATASET_LINES;
    let mut seed = evalharness::DEFAULT_SEED;
    let mut out: Option<String> = None;
    let mut families: Vec<String> = LOGHUB2_FAMILIES.iter().map(|s| s.to_string()).collect();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--lines" => lines_n = value("--lines").parse().expect("--lines: integer"),
            "--seed" => seed = value("--seed").parse().expect("--seed: integer"),
            "--out" => out = Some(value("--out")),
            "--families" => {
                families = value("--families")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: bench-accuracy [--lines N] [--seed S] [--families A,B,C] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut rows = Vec::new();
    for family in &families {
        eprintln!("scoring {family} ({lines_n} lines, seed {seed})...");
        let family_rows = score_family(family, lines_n, seed);
        for r in &family_rows {
            eprintln!(
                "  {:<20} GA {:.4}  F1 {:.4}  groups {:>4}  {:>8.1} ms",
                r.tool, r.grouping_accuracy, r.template.f1, r.found_groups, r.elapsed_ms
            );
        }
        rows.extend(family_rows);
    }

    let json = render_json(&rows, lines_n, seed);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write output file");
            eprintln!("wrote {} rows to {path}", rows.len());
        }
        None => print!("{json}"),
    }
}
