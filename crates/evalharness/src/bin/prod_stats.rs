//! Regenerate the in-text production statistics of §IV:
//!
//! * average analysis time of a 100,000-record batch (paper: ~7.5 s on an
//!   8-vCPU VM);
//! * batch fill time as promotions shrink the unknown stream (paper: ~15
//!   minutes initially, growing to 25-30 minutes).

use evalharness::DEFAULT_SEED;
use loghub_synth::{generate_stream, CorpusConfig};
use sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};
use std::time::Instant;

fn main() {
    let batch_size = 100_000usize;
    let batches = 3usize;
    println!("Production batch statistics (batch size = {batch_size}, 241 services)\n");
    let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
    let mut times = Vec::new();
    for b in 0..batches {
        let stream = generate_stream(CorpusConfig {
            services: 241,
            total: batch_size,
            seed: DEFAULT_SEED + b as u64,
        });
        let records: Vec<LogRecord> = stream
            .iter()
            .map(|i| LogRecord::new(i.service.as_str(), i.message.as_str()))
            .collect();
        let t = Instant::now();
        let report = rtg
            .analyze_by_service(&records, b as u64)
            .expect("analysis");
        let secs = t.elapsed().as_secs_f64();
        times.push(secs);
        println!(
            "batch {}: {:.2} s  (matched {} / analyzed {} / new patterns {})",
            b + 1,
            secs,
            report.matched_known,
            report.analyzed,
            report.new_patterns
        );
    }
    let avg = times.iter().sum::<f64>() / times.len() as f64;
    println!("\naverage batch analysis time: {avg:.2} s (paper: ~7.5 s)");
    println!("note: later batches run faster because the parse-first step removes");
    println!("already-known messages — the effect the paper describes.\n");

    // Batch fill time as the unknown fraction decreases.
    println!("batch fill time vs unmatched fraction (calibrated to 15 min at 78%):");
    for unmatched in [0.78, 0.60, 0.45, 0.30, 0.20, 0.15] {
        let minutes = 15.0 * 0.78 / unmatched;
        println!(
            "  unmatched {:>4.0}% -> fill time {:>5.1} min",
            unmatched * 100.0,
            minutes
        );
    }
    println!("(paper: initial wait ~15 min, growing to ~25-30 min as patterns are promoted)");
}
