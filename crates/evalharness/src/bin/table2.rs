//! Regenerate Table II: Sequence-RTG parser accuracy on the 16 datasets,
//! pre-processed and raw, against the best baseline — with the paper's
//! published numbers alongside.

use evalharness::runner::{baseline_accuracy, paper, rtg_accuracy, Variant};
use evalharness::{DATASET_LINES, DEFAULT_SEED};
use loghub_synth::{generate, DATASET_NAMES};
use sequence_rtg::RtgConfig;

fn main() {
    println!("Table II — Sequence-RTG parser accuracy (synthetic LogHub stand-ins)");
    println!("Columns: measured on this corpus | (paper's published values in parentheses)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12}   {:>22}",
        "Dataset", "Pre-proc", "Raw", "Best*", "paper (pre, raw, best)"
    );
    let config = RtgConfig::default();
    let parsers = baselines::all_parsers();
    let mut sum_pre = 0.0;
    let mut sum_raw = 0.0;
    let mut sum_best = 0.0;
    for (i, name) in DATASET_NAMES.iter().enumerate() {
        let d = generate(name, DATASET_LINES, DEFAULT_SEED);
        let pre = rtg_accuracy(&d, Variant::Preprocessed, config);
        let raw = rtg_accuracy(&d, Variant::Raw, config);
        let best = parsers
            .iter()
            .map(|p| baseline_accuracy(p.as_ref(), &d))
            .fold(0.0f64, f64::max);
        sum_pre += pre;
        sum_raw += raw;
        sum_best += best;
        let (pname, ppre, praw, pbest) = paper::TABLE2[i];
        debug_assert_eq!(pname, *name);
        let flag_pre = if pre >= best { "*" } else { " " };
        println!(
            "{:<12} {:>11.3}{} {:>12.3} {:>12.3}   ({:.3}, {:.3}, {:.3})",
            name, pre, flag_pre, raw, best, ppre, praw, pbest
        );
    }
    let n = DATASET_NAMES.len() as f64;
    let (apre, araw, abest) = paper::TABLE2_AVG;
    println!(
        "{:<12} {:>12.3} {:>12.3} {:>12.3}   ({:.3}, {:.3}, {:.3})",
        "Average",
        sum_pre / n,
        sum_raw / n,
        sum_best / n,
        apre,
        araw,
        abest
    );
    println!("\n* Best = best of our four baseline implementations (AEL, IPLoM, Spell, Drain)");
    println!("  on the pre-processed variant; the paper's Best is the best of 13 parsers.");
    println!("  A '*' after the pre-processed score marks datasets where Sequence-RTG");
    println!("  equals or beats the best baseline (the paper reports 8 of 16).");

    // The paper's future-work scanner fixes, validated: allowing
    // single-digit time parts (and the path FSM) should recover the
    // HealthApp raw-log failure. Proxifier's integer/literal type flip is a
    // *different* limitation the scanner fixes do not address — the paper
    // leaves it open too, and it stays flat here.
    println!("\nFuture-work scanner fixes on the failing datasets (raw logs):");
    println!(
        "{:<12} {:>12} {:>14}   {}",
        "Dataset", "default", "fixed scanner", "(single-digit time parts + path FSM)"
    );
    let mut fixed = RtgConfig::default();
    fixed.scanner = sequence_core::ScannerOptions::extended();
    for name in ["HealthApp", "Proxifier"] {
        let d = generate(name, DATASET_LINES, DEFAULT_SEED);
        let default = rtg_accuracy(&d, Variant::Raw, RtgConfig::default());
        let with_fix = rtg_accuracy(&d, Variant::Raw, fixed);
        println!("{name:<12} {default:>12.3} {with_fix:>14.3}");
    }
}
