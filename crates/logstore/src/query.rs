//! A small query language over the log store, in the spirit of the searches
//! administrators run in Kibana: free terms AND together, with keyword
//! filters.
//!
//! ```text
//! failed password service:sshd
//! pattern:2908692b user:root after:1000 before:2000
//! ```
//!
//! * bare words — message terms (all must match);
//! * `service:<name>` — source service filter;
//! * `pattern:<id-prefix>` — matched pattern id (prefix match, like short
//!   hashes);
//! * `<field>:<value>` — an extracted variable capture;
//! * `after:<ts>` / `before:<ts>` — inclusive time bounds.

use crate::index::{InvertedIndex, LogEntry};

/// A parsed query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// Message terms (ANDed).
    pub terms: Vec<String>,
    /// Service filter.
    pub service: Option<String>,
    /// Pattern id prefix filter.
    pub pattern_prefix: Option<String>,
    /// Field equality filters.
    pub fields: Vec<(String, String)>,
    /// Inclusive lower time bound.
    pub after: Option<u64>,
    /// Inclusive upper time bound.
    pub before: Option<u64>,
}

impl Query {
    /// Parse the query string (never fails; unrecognised syntax is treated
    /// as a term, like search boxes do).
    pub fn parse(input: &str) -> Query {
        let mut q = Query::default();
        for token in input.split_whitespace() {
            match token.split_once(':') {
                Some(("service", v)) => q.service = Some(v.to_string()),
                Some(("pattern", v)) => q.pattern_prefix = Some(v.to_string()),
                Some(("after", v)) => q.after = v.parse().ok(),
                Some(("before", v)) => q.before = v.parse().ok(),
                Some((name, v)) if !name.is_empty() && !v.is_empty() => {
                    q.fields.push((name.to_string(), v.to_string()))
                }
                _ => q.terms.push(token.to_lowercase()),
            }
        }
        q
    }
}

/// Execute a query, returning matching entries in ingest order.
pub fn search<'a>(index: &'a InvertedIndex, query: &Query) -> Vec<&'a LogEntry> {
    // Gather the posting lists for the AND.
    let mut lists: Vec<&[u64]> = Vec::new();
    for t in &query.terms {
        lists.push(index.term_postings(t));
    }
    if let Some(s) = &query.service {
        lists.push(index.service_postings(s));
    }
    let pattern_union: Vec<u64>;
    if let Some(prefix) = &query.pattern_prefix {
        // Prefix match over pattern ids: union the postings of the matching
        // ids (short-hash ergonomics).
        let mut union: Vec<u64> = Vec::new();
        for doc in index.docs() {
            if let Some(pid) = &doc.pattern_id {
                if pid.starts_with(prefix.as_str()) {
                    union.push(doc.id);
                }
            }
        }
        union.dedup();
        pattern_union = union;
        lists.push(&pattern_union);
    }
    let field_lists: Vec<Vec<u64>> = query
        .fields
        .iter()
        .map(|(n, v)| index.field_postings(n, v).to_vec())
        .collect();
    for fl in &field_lists {
        lists.push(fl);
    }

    let candidates: Vec<u64> = if lists.is_empty() {
        index.docs().iter().map(|d| d.id).collect()
    } else {
        InvertedIndex::intersect(&lists)
    };
    candidates
        .into_iter()
        .filter_map(|id| index.get(id))
        .filter(|d| query.after.map_or(true, |t| d.timestamp >= t))
        .filter(|d| query.before.map_or(true, |t| d.timestamp <= t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.ingest(
            "sshd",
            100,
            "Accepted password for root from 10.0.0.7",
            Some("aaa111".into()),
            vec![
                ("user".into(), "root".into()),
                ("srcip".into(), "10.0.0.7".into()),
            ],
        );
        idx.ingest(
            "sshd",
            200,
            "Failed password for guest from 10.0.0.9",
            Some("bbb222".into()),
            vec![
                ("user".into(), "guest".into()),
                ("srcip".into(), "10.0.0.9".into()),
            ],
        );
        idx.ingest("nginx", 300, "GET /index.html 200", None, vec![]);
        idx.ingest(
            "sshd",
            400,
            "Accepted password for root from 10.0.0.9",
            Some("aaa111".into()),
            vec![
                ("user".into(), "root".into()),
                ("srcip".into(), "10.0.0.9".into()),
            ],
        );
        idx
    }

    #[test]
    fn parse_query_string() {
        let q = Query::parse("failed password service:sshd user:root after:150 before:450");
        assert_eq!(q.terms, vec!["failed", "password"]);
        assert_eq!(q.service.as_deref(), Some("sshd"));
        assert_eq!(q.fields, vec![("user".to_string(), "root".to_string())]);
        assert_eq!(q.after, Some(150));
        assert_eq!(q.before, Some(450));
    }

    #[test]
    fn term_and_service_search() {
        let idx = sample_index();
        let hits = search(&idx, &Query::parse("password service:sshd"));
        assert_eq!(hits.len(), 3);
        let hits = search(&idx, &Query::parse("failed"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].timestamp, 200);
    }

    #[test]
    fn pattern_prefix_groups_events() {
        let idx = sample_index();
        // "searching, filtering, and data analysis much easier": one pattern
        // id pulls the whole event group.
        let hits = search(&idx, &Query::parse("pattern:aaa"));
        assert_eq!(hits.len(), 2);
        assert!(hits
            .iter()
            .all(|h| h.pattern_id.as_deref() == Some("aaa111")));
    }

    #[test]
    fn field_capture_search() {
        let idx = sample_index();
        let hits = search(&idx, &Query::parse("srcip:10.0.0.9"));
        assert_eq!(hits.len(), 2);
        let hits = search(&idx, &Query::parse("srcip:10.0.0.9 user:root"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].timestamp, 400);
    }

    #[test]
    fn time_bounds() {
        let idx = sample_index();
        let hits = search(&idx, &Query::parse("after:150 before:350"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_query_returns_everything() {
        let idx = sample_index();
        assert_eq!(search(&idx, &Query::parse("")).len(), 4);
    }

    #[test]
    fn no_hits() {
        let idx = sample_index();
        assert!(search(&idx, &Query::parse("nonexistent")).is_empty());
        assert!(search(&idx, &Query::parse("password service:nginx")).is_empty());
    }
}
