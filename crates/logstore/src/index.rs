//! The inverted index over stored log entries.
//!
//! In the paper's workflow, both matched and unmatched messages end up in
//! Elasticsearch for "searching, filtering, and data analysis". This module
//! is that destination's core mechanism: a term → postings-list inverted
//! index over the message text, plus keyword indexes over the structured
//! metadata (service, pattern id, extracted fields).

use std::collections::{BTreeMap, HashMap};

/// A stored log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Document id (assigned at ingest, dense from 0).
    pub id: u64,
    /// Source service.
    pub service: String,
    /// Ingest timestamp (unix seconds).
    pub timestamp: u64,
    /// The raw message.
    pub message: String,
    /// The matched pattern id, when the pattern database recognised the
    /// message (`None` = the "unknown" messages of the paper's Fig. 1).
    pub pattern_id: Option<String>,
    /// Variable captures extracted by the pattern match — "a small amount of
    /// information [...] extracted from the message which is passed with the
    /// message to be stored".
    pub fields: Vec<(String, String)>,
}

/// Split message text into lower-cased index terms: runs of alphanumerics
/// plus `._-/:` (so IPs, paths and ids stay whole).
pub fn index_terms(text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || matches!(c, '.' | '_' | '-' | '/' | ':') {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            terms.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        terms.push(current);
    }
    terms
}

/// The index: documents plus postings.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    docs: Vec<LogEntry>,
    /// term → sorted doc ids (deduplicated).
    postings: HashMap<String, Vec<u64>>,
    /// service → sorted doc ids.
    by_service: BTreeMap<String, Vec<u64>>,
    /// pattern id → sorted doc ids.
    by_pattern: HashMap<String, Vec<u64>>,
    /// field name → value → sorted doc ids.
    by_field: HashMap<String, HashMap<String, Vec<u64>>>,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Ingest one entry, assigning its document id.
    pub fn ingest(
        &mut self,
        service: &str,
        timestamp: u64,
        message: &str,
        pattern_id: Option<String>,
        fields: Vec<(String, String)>,
    ) -> u64 {
        let id = self.docs.len() as u64;
        for term in index_terms(message) {
            let posting = self.postings.entry(term).or_default();
            if posting.last() != Some(&id) {
                posting.push(id);
            }
        }
        self.by_service
            .entry(service.to_string())
            .or_default()
            .push(id);
        if let Some(pid) = &pattern_id {
            self.by_pattern.entry(pid.clone()).or_default().push(id);
        }
        for (name, value) in &fields {
            self.by_field
                .entry(name.clone())
                .or_default()
                .entry(value.clone())
                .or_default()
                .push(id);
        }
        self.docs.push(LogEntry {
            id,
            service: service.to_string(),
            timestamp,
            message: message.to_string(),
            pattern_id,
            fields,
        });
        id
    }

    /// Fetch a document by id.
    pub fn get(&self, id: u64) -> Option<&LogEntry> {
        self.docs.get(id as usize)
    }

    /// Postings for one message term (empty slice when absent).
    pub fn term_postings(&self, term: &str) -> &[u64] {
        self.postings
            .get(&term.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Doc ids for a service.
    pub fn service_postings(&self, service: &str) -> &[u64] {
        self.by_service
            .get(service)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Doc ids for a pattern id.
    pub fn pattern_postings(&self, pattern_id: &str) -> &[u64] {
        self.by_pattern
            .get(pattern_id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Doc ids for an extracted field value.
    pub fn field_postings(&self, name: &str, value: &str) -> &[u64] {
        self.by_field
            .get(name)
            .and_then(|m| m.get(value))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All stored docs, in ingest order.
    pub fn docs(&self) -> &[LogEntry] {
        &self.docs
    }

    /// Distinct services, sorted.
    pub fn services(&self) -> Vec<&str> {
        self.by_service.keys().map(|s| s.as_str()).collect()
    }

    /// Intersect several sorted posting lists.
    pub fn intersect(lists: &[&[u64]]) -> Vec<u64> {
        match lists.len() {
            0 => Vec::new(),
            1 => lists[0].to_vec(),
            _ => {
                let mut acc: Vec<u64> = lists[0].to_vec();
                for list in &lists[1..] {
                    let mut out = Vec::new();
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < acc.len() && j < list.len() {
                        match acc[i].cmp(&list[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                out.push(acc[i]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    acc = out;
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_keep_ips_paths_ids_whole() {
        assert_eq!(
            index_terms("Accepted from 10.0.0.7 port 22, file /var/log/x.log (pid=99)"),
            vec![
                "accepted",
                "from",
                "10.0.0.7",
                "port",
                "22",
                "file",
                "/var/log/x.log",
                "pid",
                "99"
            ]
        );
    }

    #[test]
    fn ingest_and_lookup() {
        let mut idx = InvertedIndex::new();
        let a = idx.ingest("sshd", 100, "Accepted password for root", None, vec![]);
        let b = idx.ingest(
            "sshd",
            101,
            "Failed password for guest",
            Some("p1".into()),
            vec![("user".into(), "guest".into())],
        );
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.term_postings("password"), &[a, b]);
        assert_eq!(idx.term_postings("FAILED"), &[b]);
        assert_eq!(idx.service_postings("sshd"), &[a, b]);
        assert_eq!(idx.pattern_postings("p1"), &[b]);
        assert_eq!(idx.field_postings("user", "guest"), &[b]);
        assert!(idx.term_postings("absent").is_empty());
        assert_eq!(idx.get(b).unwrap().timestamp, 101);
    }

    #[test]
    fn duplicate_terms_index_once_per_doc() {
        let mut idx = InvertedIndex::new();
        let a = idx.ingest("x", 1, "ping ping ping", None, vec![]);
        assert_eq!(idx.term_postings("ping"), &[a]);
    }

    #[test]
    fn intersection() {
        assert_eq!(
            InvertedIndex::intersect(&[&[1, 3, 5, 7], &[2, 3, 5, 9], &[3, 5]]),
            vec![3, 5]
        );
        assert!(InvertedIndex::intersect(&[&[1, 2], &[3]]).is_empty());
        assert!(InvertedIndex::intersect(&[]).is_empty());
    }
}
