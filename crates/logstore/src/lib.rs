//! # logstore
//!
//! The destination end of the paper's log-management workflow (Figs. 1
//! and 6): an indexed store standing in for Elasticsearch, where "matched
//! and unmatched messages" land and where matched messages carry their
//! pattern id and the "small amount of information [...] extracted from the
//! message" (the variable captures).
//!
//! * [`index`] — document store + inverted index over message terms,
//!   service, pattern id, and extracted fields;
//! * [`query`] — a Kibana-search-box-style query language
//!   (`failed password service:sshd user:root after:100`);
//! * [`LogSink`] — the ingest façade wiring a pattern match outcome into an
//!   enriched stored document.
//!
//! The point the paper makes — "this will allow us to increase the number of
//! log entries that can be matched to a known pattern, which in turn will
//! make searching, filtering, and data analysis much easier" — becomes
//! directly testable here: matched messages are retrievable by pattern id
//! and by extracted field values; unmatched ones only by full-text terms.

#![warn(missing_docs)]

pub mod aggs;
pub mod index;
pub mod query;

pub use aggs::{date_histogram, match_split, top_patterns, top_services, TermCount, TimeBucket};
pub use index::{InvertedIndex, LogEntry};
pub use query::{search, Query};

use sequence_core::{Captures, MatchScratch, PatternSet, Scanner, TokenizedMessage};

/// The ingest façade: scans and matches each message against a pattern set
/// (the promoted pattern database of the workflow) and stores it with
/// whatever enrichment the match produced.
#[derive(Debug, Default)]
pub struct LogSink {
    scanner: Scanner,
    index: InvertedIndex,
    scratch: MatchScratch,
    matched: u64,
    unmatched: u64,
}

impl LogSink {
    /// An empty sink.
    pub fn new() -> LogSink {
        LogSink::default()
    }

    /// Ingest one message through the pattern database. Returns the stored
    /// document id.
    pub fn ingest(
        &mut self,
        patterns: Option<&PatternSet>,
        service: &str,
        timestamp: u64,
        message: &str,
    ) -> u64 {
        // Parse-only scan: the raw message is stored from `message` itself,
        // so the tokenised copy never needs to carry it.
        let scanned: TokenizedMessage = self.scanner.scan_parse_only(message);
        let outcome = patterns.and_then(|p| p.match_message_with(&scanned, &mut self.scratch));
        match outcome {
            Some(o) => {
                self.matched += 1;
                let Captures { values } = o.captures;
                self.index
                    .ingest(service, timestamp, message, Some(o.pattern_id), values)
            }
            None => {
                self.unmatched += 1;
                self.index
                    .ingest(service, timestamp, message, None, Vec::new())
            }
        }
    }

    /// The underlying index (for queries).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Messages stored with a pattern match.
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Messages stored without a match (the "unknown" share of Fig. 1).
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// The headline metric of the paper's Fig. 7.
    pub fn unmatched_ratio(&self) -> f64 {
        let total = self.matched + self.unmatched;
        if total == 0 {
            0.0
        } else {
            self.unmatched as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequence_core::Pattern;

    fn pattern_set() -> PatternSet {
        let mut set = PatternSet::new();
        set.insert(
            "pat-accept",
            Pattern::parse("Accepted password for %user% from %srcip:ipv4% port %port:integer%")
                .unwrap(),
        );
        set
    }

    #[test]
    fn matched_messages_are_enriched() {
        let mut sink = LogSink::new();
        let set = pattern_set();
        sink.ingest(
            Some(&set),
            "sshd",
            10,
            "Accepted password for root from 10.0.0.7 port 22",
        );
        sink.ingest(Some(&set), "sshd", 11, "weird unparseable thing");
        assert_eq!(sink.matched(), 1);
        assert_eq!(sink.unmatched(), 1);
        assert!((sink.unmatched_ratio() - 0.5).abs() < 1e-12);

        // Matched entry is findable by pattern id and captured field.
        let hits = search(sink.index(), &Query::parse("pattern:pat-accept"));
        assert_eq!(hits.len(), 1);
        let hits = search(sink.index(), &Query::parse("user:root"));
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].fields.iter().find(|(n, _)| n == "srcip").unwrap().1,
            "10.0.0.7"
        );
        // Unmatched entry only via full text.
        let hits = search(sink.index(), &Query::parse("unparseable"));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].pattern_id.is_none());
    }

    #[test]
    fn no_pattern_set_stores_everything_unmatched() {
        let mut sink = LogSink::new();
        sink.ingest(None, "svc", 1, "hello world");
        assert_eq!(sink.unmatched(), 1);
        assert_eq!(search(sink.index(), &Query::parse("hello")).len(), 1);
    }
}
