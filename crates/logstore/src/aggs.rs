//! Aggregations over the log store — the data behind the dashboards.
//!
//! The paper's workflow ends with the stored stream being "transformed into
//! comprehensive graphs" (Kibana / Grafana on top of Elasticsearch). These
//! aggregations produce exactly the series those dashboards draw: counts per
//! time bucket, top services / patterns, and the matched-vs-unmatched split
//! that Fig. 7 tracks.

use crate::index::{InvertedIndex, LogEntry};
use crate::query::{search, Query};
use std::collections::HashMap;

/// A date-histogram bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeBucket {
    /// Inclusive bucket start (unix seconds, aligned to the interval).
    pub start: u64,
    /// Documents in the bucket.
    pub count: u64,
    /// Of which: matched to a pattern.
    pub matched: u64,
}

/// Count documents per fixed time interval. Buckets are aligned to
/// `interval` and returned in order; empty buckets between the first and
/// last are included (dashboards need the gaps).
pub fn date_histogram(index: &InvertedIndex, query: &Query, interval: u64) -> Vec<TimeBucket> {
    let interval = interval.max(1);
    let hits = search(index, query);
    if hits.is_empty() {
        return Vec::new();
    }
    let mut counts: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut min = u64::MAX;
    let mut max = 0u64;
    for h in &hits {
        let bucket = h.timestamp - h.timestamp % interval;
        let slot = counts.entry(bucket).or_insert((0, 0));
        slot.0 += 1;
        if h.pattern_id.is_some() {
            slot.1 += 1;
        }
        min = min.min(bucket);
        max = max.max(bucket);
    }
    let mut out = Vec::new();
    let mut b = min;
    while b <= max {
        let (count, matched) = counts.get(&b).copied().unwrap_or((0, 0));
        out.push(TimeBucket {
            start: b,
            count,
            matched,
        });
        b += interval;
    }
    out
}

/// A term with its document count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermCount {
    /// The term (service name, pattern id, or field value).
    pub term: String,
    /// Documents carrying it.
    pub count: u64,
}

fn top_of(mut counts: HashMap<String, u64>, n: usize) -> Vec<TermCount> {
    let mut v: Vec<TermCount> = counts
        .drain()
        .map(|(term, count)| TermCount { term, count })
        .collect();
    v.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.term.cmp(&b.term)));
    v.truncate(n);
    v
}

/// Top services by document count among the query's hits.
pub fn top_services(index: &InvertedIndex, query: &Query, n: usize) -> Vec<TermCount> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for h in search(index, query) {
        *counts.entry(h.service.clone()).or_insert(0) += 1;
    }
    top_of(counts, n)
}

/// Top matched patterns by document count among the query's hits.
pub fn top_patterns(index: &InvertedIndex, query: &Query, n: usize) -> Vec<TermCount> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for h in search(index, query) {
        if let Some(pid) = &h.pattern_id {
            *counts.entry(pid.clone()).or_insert(0) += 1;
        }
    }
    top_of(counts, n)
}

/// Top values of one extracted field (e.g. the most frequent `srcip` — the
/// bread-and-butter security dashboard).
pub fn top_field_values(
    index: &InvertedIndex,
    query: &Query,
    field: &str,
    n: usize,
) -> Vec<TermCount> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for h in search(index, query) {
        for (name, value) in &h.fields {
            if name == field {
                *counts.entry(value.clone()).or_insert(0) += 1;
            }
        }
    }
    top_of(counts, n)
}

/// The matched / unmatched split over the query's hits (the Fig. 7 ratio,
/// computable for any slice of the store).
pub fn match_split(index: &InvertedIndex, query: &Query) -> (u64, u64) {
    let mut matched = 0;
    let mut unmatched = 0;
    for h in search(index, query) {
        if h.pattern_id.is_some() {
            matched += 1;
        } else {
            unmatched += 1;
        }
    }
    (matched, unmatched)
}

/// Pull the raw entries of one pattern (drill-down from a dashboard tile).
pub fn drill_down<'a>(index: &'a InvertedIndex, pattern_id: &str) -> Vec<&'a LogEntry> {
    index
        .pattern_postings(pattern_id)
        .iter()
        .filter_map(|&id| index.get(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        // Two services, timestamps spanning 300 seconds, some matched.
        for i in 0..30u64 {
            let svc = if i % 3 == 0 { "nginx" } else { "sshd" };
            let pid = if i % 2 == 0 {
                Some("pat-even".to_string())
            } else {
                None
            };
            let fields = if pid.is_some() {
                vec![("srcip".to_string(), format!("10.0.0.{}", i % 4))]
            } else {
                vec![]
            };
            idx.ingest(
                svc,
                1000 + i * 10,
                &format!("event number {i}"),
                pid,
                fields,
            );
        }
        idx
    }

    #[test]
    fn histogram_buckets_align_and_fill() {
        let idx = index();
        let buckets = date_histogram(&idx, &Query::default(), 60);
        assert_eq!(buckets[0].start, 960); // 1000 aligned down to 60s
                                           // Buckets are contiguous.
        for w in buckets.windows(2) {
            assert_eq!(w[1].start - w[0].start, 60);
        }
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 30);
        let matched: u64 = buckets.iter().map(|b| b.matched).sum();
        assert_eq!(matched, 15);
    }

    #[test]
    fn histogram_respects_query() {
        let idx = index();
        let buckets = date_histogram(&idx, &Query::parse("service:nginx"), 1000);
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_histogram() {
        let idx = InvertedIndex::new();
        assert!(date_histogram(&idx, &Query::default(), 60).is_empty());
    }

    #[test]
    fn top_services_and_patterns() {
        let idx = index();
        let services = top_services(&idx, &Query::default(), 10);
        assert_eq!(services[0].term, "sshd");
        assert_eq!(services[0].count, 20);
        assert_eq!(
            services[1],
            TermCount {
                term: "nginx".into(),
                count: 10
            }
        );
        let patterns = top_patterns(&idx, &Query::default(), 10);
        assert_eq!(
            patterns,
            vec![TermCount {
                term: "pat-even".into(),
                count: 15
            }]
        );
    }

    #[test]
    fn top_field_values_counts() {
        let idx = index();
        let ips = top_field_values(&idx, &Query::default(), "srcip", 2);
        assert_eq!(ips.len(), 2);
        assert!(ips[0].count >= ips[1].count);
        assert!(ips[0].term.starts_with("10.0.0."));
    }

    #[test]
    fn match_split_ratio() {
        let idx = index();
        assert_eq!(match_split(&idx, &Query::default()), (15, 15));
        let (m, u) = match_split(&idx, &Query::parse("pattern:pat-even"));
        assert_eq!((m, u), (15, 0));
    }

    #[test]
    fn drill_down_returns_pattern_docs() {
        let idx = index();
        let docs = drill_down(&idx, "pat-even");
        assert_eq!(docs.len(), 15);
        assert!(docs
            .iter()
            .all(|d| d.pattern_id.as_deref() == Some("pat-even")));
    }
}
