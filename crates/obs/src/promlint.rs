//! A linter for the Prometheus text exposition format.
//!
//! This is the CI contract checker for `/metrics`: it verifies that every
//! exported series is self-describing (`# HELP` + `# TYPE` before the first
//! sample), that histogram buckets are cumulative-monotone and end in
//! `+Inf` with `_count` equal to the `+Inf` bucket, that `_sum`/`_count`
//! are present for every histogram series, and that no series (name +
//! label set) is exported twice. It also extracts the metric-family name
//! set so `ci.sh` can diff it against the checked-in golden contract.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lint finding, with the 1-based line number it was found on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line number in the scraped text.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Sample {
    line: usize,
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Lint `text`; returns all findings (empty means the exposition is clean).
pub fn lint(text: &str) -> Vec<LintError> {
    let mut errors = Vec::new();
    let mut help: BTreeMap<String, usize> = BTreeMap::new();
    let mut types: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut first_sample_line: BTreeMap<String, usize> = BTreeMap::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(spec) = rest.strip_prefix("HELP ") {
                match spec.split_once(' ') {
                    Some((name, _)) if valid_name(name) => {
                        if help.insert(name.to_string(), lineno).is_some() {
                            errors.push(err(lineno, format!("duplicate HELP for {name}")));
                        }
                    }
                    _ => errors.push(err(lineno, format!("malformed HELP line: {line}"))),
                }
            } else if let Some(spec) = rest.strip_prefix("TYPE ") {
                let mut parts = spec.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some(name), Some(ty), None)
                        if valid_name(name)
                            && matches!(
                                ty,
                                "counter" | "gauge" | "histogram" | "summary" | "untyped"
                            ) =>
                    {
                        if types
                            .insert(name.to_string(), (ty.to_string(), lineno))
                            .is_some()
                        {
                            errors.push(err(lineno, format!("duplicate TYPE for {name}")));
                        }
                    }
                    _ => errors.push(err(lineno, format!("malformed TYPE line: {line}"))),
                }
            }
            // Other comments are allowed and ignored.
            continue;
        }
        match parse_sample(line) {
            Ok((name, labels, value)) => {
                if !valid_name(&name) {
                    errors.push(err(lineno, format!("invalid metric name: {name}")));
                }
                for (k, _) in &labels {
                    if !valid_label(k) {
                        errors.push(err(lineno, format!("invalid label name: {k}")));
                    }
                }
                let series_key = format!("{name}{{{}}}", canonical_labels(&labels));
                if !seen_series.insert(series_key.clone()) {
                    errors.push(err(lineno, format!("duplicate series: {series_key}")));
                }
                first_sample_line.entry(name.clone()).or_insert(lineno);
                samples.push(Sample {
                    line: lineno,
                    name,
                    labels,
                    value,
                });
            }
            Err(msg) => errors.push(err(lineno, msg)),
        }
    }

    // Every sample must belong to a family with HELP and TYPE, declared
    // before the family's first sample.
    for s in &samples {
        let family = family_of(&s.name, &types);
        match family {
            Some(f) => {
                let (_, type_line) = &types[&f];
                if *type_line > s.line {
                    errors.push(err(
                        s.line,
                        format!("sample {} precedes its TYPE declaration", s.name),
                    ));
                }
                match help.get(&f) {
                    None => errors.push(err(s.line, format!("series {} has no HELP", s.name))),
                    Some(help_line) if *help_line > s.line => errors.push(err(
                        s.line,
                        format!("sample {} precedes its HELP declaration", s.name),
                    )),
                    _ => {}
                }
            }
            None => errors.push(err(s.line, format!("series {} has no TYPE", s.name))),
        }
    }

    // Histogram structure checks, per (family, non-le label set).
    let histogram_families: BTreeSet<String> = types
        .iter()
        .filter(|(_, (ty, _))| ty == "histogram")
        .map(|(name, _)| name.clone())
        .collect();
    for fam in &histogram_families {
        check_histogram(fam, &samples, &mut errors);
    }

    errors.sort_by_key(|e| e.line);
    errors
}

fn check_histogram(fam: &str, samples: &[Sample], errors: &mut Vec<LintError>) {
    // Group by the label set excluding `le`.
    let mut groups: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
    for s in samples {
        let base = s
            .name
            .strip_suffix("_bucket")
            .or_else(|| s.name.strip_suffix("_sum"))
            .or_else(|| s.name.strip_suffix("_count"))
            .unwrap_or(&s.name);
        if base != fam {
            continue;
        }
        let non_le: Vec<(String, String)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        groups.entry(canonical_labels(&non_le)).or_default().push(s);
    }
    for (labels, group) in groups {
        let series = if labels.is_empty() {
            fam.to_string()
        } else {
            format!("{fam}{{{labels}}}")
        };
        let mut buckets: Vec<&Sample> = Vec::new();
        let mut sum = None;
        let mut count = None;
        for s in &group {
            if s.name.ends_with("_bucket") {
                buckets.push(s);
            } else if s.name.ends_with("_sum") {
                sum = Some(*s);
            } else if s.name.ends_with("_count") {
                count = Some(*s);
            }
        }
        let first_line = group.first().map(|s| s.line).unwrap_or(0);
        if sum.is_none() {
            errors.push(err(first_line, format!("histogram {series} has no _sum")));
        }
        let Some(count) = count else {
            errors.push(err(first_line, format!("histogram {series} has no _count")));
            continue;
        };
        if buckets.is_empty() {
            errors.push(err(
                first_line,
                format!("histogram {series} has no _bucket samples"),
            ));
            continue;
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = -1.0f64;
        let mut has_inf = false;
        for b in &buckets {
            let le = match b.labels.iter().find(|(k, _)| k == "le") {
                Some((_, v)) if v == "+Inf" => f64::INFINITY,
                Some((_, v)) => match v.parse::<f64>() {
                    Ok(x) => x,
                    Err(_) => {
                        errors.push(err(b.line, format!("histogram {series}: bad le \"{v}\"")));
                        continue;
                    }
                },
                None => {
                    errors.push(err(
                        b.line,
                        format!("histogram {series}: _bucket without le label"),
                    ));
                    continue;
                }
            };
            if le <= prev_le {
                errors.push(err(
                    b.line,
                    format!("histogram {series}: le values not strictly increasing"),
                ));
            }
            if b.value < prev_cum {
                errors.push(err(
                    b.line,
                    format!("histogram {series}: bucket counts not cumulative-monotone"),
                ));
            }
            if le.is_infinite() {
                has_inf = true;
            }
            prev_le = le;
            prev_cum = b.value;
        }
        if !has_inf {
            errors.push(err(
                buckets.last().unwrap().line,
                format!("histogram {series}: buckets do not end in +Inf"),
            ));
        } else if let Some(last) = buckets.last() {
            if (last.value - count.value).abs() > f64::EPSILON * count.value.max(1.0) {
                errors.push(err(
                    count.line,
                    format!(
                        "histogram {series}: _count ({}) != +Inf bucket ({})",
                        count.value, last.value
                    ),
                ));
            }
        }
    }
}

/// The family a sample belongs to, given the declared TYPEs. For histogram
/// and summary types, `_bucket`/`_sum`/`_count` suffixes map back to the
/// base family; everything else must match a TYPE by exact name.
fn family_of(name: &str, types: &BTreeMap<String, (String, usize)>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some((ty, _)) = types.get(base) {
                if ty == "histogram" || ty == "summary" {
                    return Some(base.to_string());
                }
            }
        }
    }
    None
}

/// The sorted set of metric-family names in `text` (samples folded to
/// their base family using the declared TYPEs).
pub fn metric_names(text: &str) -> Vec<String> {
    let mut types: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for line in text.lines() {
        if let Some(spec) = line.trim().strip_prefix("# TYPE ") {
            let mut parts = spec.split_whitespace();
            if let (Some(name), Some(ty)) = (parts.next(), parts.next()) {
                types.insert(name.to_string(), (ty.to_string(), 0));
            }
        }
    }
    let mut names: BTreeSet<String> = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Ok((name, _, _)) = parse_sample(line) {
            names.insert(family_of(&name, &types).unwrap_or(name));
        }
    }
    names.into_iter().collect()
}

fn err(line: usize, message: String) -> LintError {
    LintError { line, message }
}

fn canonical_labels(labels: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

fn valid_name(name: &str) -> bool {
    crate::registry::valid_metric_name(name)
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse one sample line: `name{k="v",...} value [timestamp]`.
fn parse_sample(line: &str) -> Result<(String, Vec<(String, String)>, f64), String> {
    let line = line.trim();
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("malformed sample (no value): {line}"))?;
    let name = line[..name_end].to_string();
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close =
            find_label_close(body).ok_or_else(|| format!("unterminated label set: {line}"))?;
        (parse_labels(&body[..close])?, &body[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let mut fields = rest.split_whitespace();
    let value_str = fields
        .next()
        .ok_or_else(|| format!("sample has no value: {line}"))?;
    let value = parse_value(value_str)
        .ok_or_else(|| format!("unparseable sample value \"{value_str}\""))?;
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp \"{ts}\""));
        }
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage after sample: {line}"));
    }
    Ok((name, labels, value))
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse::<f64>().ok(),
    }
}

/// Index of the `}` closing the label set, honouring quoted values.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label value not quoted: {rest}")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    other => {
                        value.push('\\');
                        value.push(other);
                    }
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest}"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels: {rest}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "\
# HELP x_total total xs
# TYPE x_total counter
x_total 4
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le=\"0.001\"} 3
lat_seconds_bucket{le=\"0.01\"} 5
lat_seconds_bucket{le=\"+Inf\"} 6
lat_seconds_sum 0.042
lat_seconds_count 6
";

    #[test]
    fn clean_exposition_lints_clean() {
        assert_eq!(lint(CLEAN), Vec::new());
    }

    #[test]
    fn extracts_family_names() {
        assert_eq!(metric_names(CLEAN), vec!["lat_seconds", "x_total"]);
    }

    #[test]
    fn missing_type_is_an_error() {
        let text = "orphan_total 3\n";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("has no TYPE")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_help_is_an_error() {
        let text = "# TYPE a_total counter\na_total 1\n";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("has no HELP")),
            "{errs:?}"
        );
    }

    #[test]
    fn type_after_sample_is_an_error() {
        let text = "a_total 1\n# HELP a_total a\n# TYPE a_total counter\n";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("precedes its TYPE")),
            "{errs:?}"
        );
    }

    #[test]
    fn histogram_without_inf_is_an_error() {
        let text = "\
# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le=\"1\"} 2
h_seconds_sum 1.0
h_seconds_count 2
";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("end in +Inf")),
            "{errs:?}"
        );
    }

    #[test]
    fn non_monotone_buckets_are_an_error() {
        let text = "\
# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.1\"} 5
h_seconds_bucket{le=\"1\"} 3
h_seconds_bucket{le=\"+Inf\"} 5
h_seconds_sum 1.0
h_seconds_count 5
";
        let errs = lint(text);
        assert!(
            errs.iter()
                .any(|e| e.message.contains("cumulative-monotone")),
            "{errs:?}"
        );
    }

    #[test]
    fn count_mismatch_is_an_error() {
        let text = "\
# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le=\"+Inf\"} 5
h_seconds_sum 1.0
h_seconds_count 4
";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("!= +Inf bucket")),
            "{errs:?}"
        );
    }

    #[test]
    fn duplicate_series_is_an_error() {
        let text = "\
# HELP a_total a
# TYPE a_total counter
a_total{svc=\"x\"} 1
a_total{svc=\"x\"} 2
";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("duplicate series")),
            "{errs:?}"
        );
    }

    #[test]
    fn per_label_histograms_are_checked_independently() {
        let text = "\
# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{service=\"a\",le=\"0.1\"} 1
h_seconds_bucket{service=\"a\",le=\"+Inf\"} 2
h_seconds_sum{service=\"a\"} 0.3
h_seconds_count{service=\"a\"} 2
h_seconds_bucket{service=\"b\",le=\"+Inf\"} 7
h_seconds_sum{service=\"b\"} 0.9
h_seconds_count{service=\"b\"} 7
";
        assert_eq!(lint(text), Vec::new());
    }

    #[test]
    fn missing_sum_is_an_error() {
        let text = "\
# HELP h_seconds h
# TYPE h_seconds histogram
h_seconds_bucket{le=\"+Inf\"} 1
h_seconds_count 1
";
        let errs = lint(text);
        assert!(
            errs.iter().any(|e| e.message.contains("has no _sum")),
            "{errs:?}"
        );
    }

    #[test]
    fn garbage_lines_are_errors() {
        let errs = lint("this is not prometheus\n");
        assert!(!errs.is_empty());
    }

    #[test]
    fn registry_render_passes_the_linter() {
        let r = crate::registry::Registry::new(4);
        let h = r.histogram("pipe_seconds", "pipeline stage");
        for i in 0..1000u64 {
            h.record_ns(i * 1_000);
        }
        r.family_histogram("svc_seconds", "per-service", "service", "ssh\"d")
            .record_ns(123_456);
        let text = r.render_prometheus();
        assert_eq!(lint(&text), Vec::new(), "render must self-lint:\n{text}");
        assert_eq!(metric_names(&text), vec!["pipe_seconds", "svc_seconds"]);
    }
}
