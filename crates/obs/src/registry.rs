//! Process-global metric registry.
//!
//! One registry per process (lazily created by [`registry`]); every crate
//! in the workspace records into it, so the daemon, the offline eval
//! harness, and the benches all export the same series from the same place.
//! Histograms are created on first use and live forever — scrape-side code
//! can therefore pre-register the full contract up front (see
//! `seqd::metrics::preregister`) so the exported name set does not depend
//! on which code paths have run.

use crate::hist::{bucket_upper_ns, HistSnapshot, Histogram, BUCKETS};
use crate::slow::SlowRing;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Default capacity of the process-wide slow-op ring.
pub const SLOW_RING_CAPACITY: usize = 32;

/// A metric registry: named histograms, labelled histogram families, and
/// the slow-op ring.
pub struct Registry {
    hists: RwLock<BTreeMap<String, Entry>>,
    families: RwLock<BTreeMap<String, Family>>,
    slow: SlowRing,
}

struct Entry {
    help: &'static str,
    hist: Arc<Histogram>,
}

struct Family {
    help: &'static str,
    label: &'static str,
    series: BTreeMap<String, Arc<Histogram>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(|| Registry::new(SLOW_RING_CAPACITY))
}

impl Registry {
    /// A fresh registry (tests; production code uses [`registry`]).
    pub fn new(slow_capacity: usize) -> Registry {
        Registry {
            hists: RwLock::new(BTreeMap::new()),
            families: RwLock::new(BTreeMap::new()),
            slow: SlowRing::new(slow_capacity),
        }
    }

    /// The slow-op ring.
    pub fn slow(&self) -> &SlowRing {
        &self.slow
    }

    /// Get or create the named histogram. `name` must be a valid Prometheus
    /// metric name (enforced by debug assertion; the promlint CI gate is
    /// the backstop in release builds).
    pub fn histogram(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        if let Some(e) = self
            .hists
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(&e.hist);
        }
        let mut map = self.hists.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            &map.entry(name.to_string())
                .or_insert_with(|| Entry {
                    help,
                    hist: Arc::new(Histogram::new()),
                })
                .hist,
        )
    }

    /// Get or create one series of a labelled histogram family, e.g.
    /// `seqd_service_match_seconds{service="sshd"}`.
    pub fn family_histogram(
        &self,
        name: &str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Arc<Histogram> {
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        {
            let fams = self.families.read().unwrap_or_else(|e| e.into_inner());
            if let Some(f) = fams.get(name) {
                if let Some(h) = f.series.get(value) {
                    return Arc::clone(h);
                }
            }
        }
        let mut fams = self.families.write().unwrap_or_else(|e| e.into_inner());
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help,
            label,
            series: BTreeMap::new(),
        });
        Arc::clone(
            fam.series
                .entry(value.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Snapshot a named histogram, if it exists.
    pub fn snapshot(&self, name: &str) -> Option<HistSnapshot> {
        self.hists
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|e| e.hist.snapshot())
    }

    /// Snapshot every series of a labelled family: `(label_value, snapshot)`.
    pub fn family_snapshots(&self, name: &str) -> Vec<(String, HistSnapshot)> {
        self.families
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|f| {
                f.series
                    .iter()
                    .map(|(v, h)| (v.clone(), h.snapshot()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Render every histogram in Prometheus text exposition format.
    ///
    /// Buckets are cumulative and sparse: empty buckets are skipped (the
    /// format does not require them) but `+Inf` is always present, so the
    /// output stays compact while `_count == +Inf` holds by construction.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let hists = self.hists.read().unwrap_or_else(|e| e.into_inner());
        for (name, entry) in hists.iter() {
            render_histogram_header(&mut out, name, entry.help);
            render_histogram_series(&mut out, name, "", &entry.hist.snapshot());
        }
        drop(hists);
        let fams = self.families.read().unwrap_or_else(|e| e.into_inner());
        for (name, fam) in fams.iter() {
            render_histogram_header(&mut out, name, fam.help);
            for (value, hist) in fam.series.iter() {
                let labels = format!("{}=\"{}\"", fam.label, escape_label(value));
                render_histogram_series(&mut out, name, &labels, &hist.snapshot());
            }
        }
        out
    }

    /// Names of all registered metric families, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .hists
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.extend(
            self.families
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .keys()
                .cloned(),
        );
        names.sort();
        names
    }
}

fn render_histogram_header(out: &mut String, name: &str, help: &'static str) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
}

fn render_histogram_series(out: &mut String, name: &str, labels: &str, snap: &HistSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        let n = snap.buckets[i];
        if n == 0 {
            continue;
        }
        cumulative += n;
        match bucket_upper_ns(i) {
            Some(up) => out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}\n",
                fmt_le(up as f64 / 1e9)
            )),
            None => {} // overflow: folded into +Inf below
        }
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
        snap.count
    ));
    out.push_str(&format!(
        "{name}_sum{}{}{} {}\n",
        if labels.is_empty() { "" } else { "{" },
        labels,
        if labels.is_empty() { "" } else { "}" },
        fmt_f64(snap.sum_ns as f64 / 1e9)
    ));
    out.push_str(&format!(
        "{name}_count{}{}{} {}\n",
        if labels.is_empty() { "" } else { "{" },
        labels,
        if labels.is_empty() { "" } else { "}" },
        snap.count
    ));
}

/// Format a bucket edge without trailing-zero noise (e.g. `0.000262144`).
fn fmt_le(v: f64) -> String {
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Whether `name` is a legal Prometheus metric name.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_histogram() {
        let r = Registry::new(4);
        let a = r.histogram("x_seconds", "x");
        let b = r.histogram("x_seconds", "x");
        a.record_ns(1_000);
        assert_eq!(b.snapshot().count, 1);
    }

    #[test]
    fn render_has_help_type_and_inf_for_every_series() {
        let r = Registry::new(4);
        r.histogram("a_seconds", "stage a").record_ns(5_000);
        r.family_histogram("svc_seconds", "per-service", "service", "sshd")
            .record_ns(9_000);
        let text = r.render_prometheus();
        for name in ["a_seconds", "svc_seconds"] {
            assert!(text.contains(&format!("# HELP {name} ")));
            assert!(text.contains(&format!("# TYPE {name} histogram")));
            assert!(text.contains(&format!("{name}_count")));
        }
        assert!(text.contains("a_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("svc_seconds_bucket{service=\"sshd\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn family_series_are_per_label_value() {
        let r = Registry::new(4);
        r.family_histogram("m_seconds", "h", "service", "a")
            .record_ns(100);
        r.family_histogram("m_seconds", "h", "service", "b")
            .record_ns(200);
        let snaps = r.family_snapshots("m_seconds");
        assert_eq!(snaps.len(), 2);
        assert!(snaps.iter().all(|(_, s)| s.count == 1));
    }

    #[test]
    fn metric_names_are_sorted_and_complete() {
        let r = Registry::new(4);
        r.histogram("z_seconds", "z");
        r.histogram("a_seconds", "a");
        r.family_histogram("m_seconds", "m", "service", "x");
        assert_eq!(
            r.metric_names(),
            vec!["a_seconds", "m_seconds", "z_seconds"]
        );
    }
}
