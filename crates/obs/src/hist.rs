//! Log-linear latency histograms with lock-free recording.
//!
//! The bucket scheme is HDR-style log-linear: each power-of-two octave is
//! split into [`SUBS`] linear sub-buckets, so the relative bucket width is
//! at most `1 / SUBS` (25% with the default 4 sub-buckets). Durations are
//! recorded in integer nanoseconds and exported in seconds, matching the
//! Prometheus convention for `*_seconds` histograms.
//!
//! Recording is two relaxed `fetch_add`s on a per-thread *stripe* — threads
//! are assigned round-robin to one of [`STRIPES`] shards, so concurrent
//! recorders on different threads rarely touch the same cache lines and
//! never take a lock. A scrape merges all stripes into a [`HistSnapshot`];
//! because every increment lands in exactly one stripe, the merge is
//! lossless (the property test in `tests/` pins this down).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 2;
/// Linear sub-buckets per power-of-two octave.
pub const SUBS: usize = 1 << SUB_BITS;

/// Smallest octave tracked precisely: values below `2^MIN_EXP` ns collapse
/// into the buckets of the first octave (256 ns resolution floor).
pub const MIN_EXP: u32 = 8;
/// Largest octave tracked precisely: values at or above `2^(MAX_EXP+1)` ns
/// (~137 s) all land in the final overflow bucket.
pub const MAX_EXP: u32 = 36;

/// Total bucket count, including the final overflow bucket.
pub const BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * SUBS + 1;

/// Number of independent recording stripes (power of two).
pub const STRIPES: usize = 16;

/// Map a duration in nanoseconds to its bucket index.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let v = ns.max(1 << MIN_EXP);
    let exp = 63 - v.leading_zeros();
    if exp > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUBS - 1);
    ((exp - MIN_EXP) as usize) * SUBS + sub
}

/// Exclusive upper edge of bucket `idx` in nanoseconds, or `None` for the
/// overflow bucket (rendered as `+Inf`).
pub fn bucket_upper_ns(idx: usize) -> Option<u64> {
    if idx >= BUCKETS - 1 {
        return None;
    }
    let exp = MIN_EXP + (idx / SUBS) as u32;
    let sub = (idx % SUBS) as u64;
    Some((SUBS as u64 + sub + 1) << (exp - SUB_BITS))
}

#[repr(align(128))]
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// A concurrent log-linear histogram of durations in nanoseconds.
pub struct Histogram {
    stripes: Vec<Stripe>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Record one duration. Lock-free: two relaxed atomic adds on this
    /// thread's stripe.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let s = MY_STRIPE.with(|s| *s);
        let stripe = &self.stripes[s];
        stripe.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        stripe.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a `std::time::Duration`.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge all stripes into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum_ns = 0u64;
        for stripe in &self.stripes {
            for (i, b) in stripe.buckets.iter().enumerate() {
                buckets[i] += b.load(Ordering::Relaxed);
            }
            sum_ns = sum_ns.wrapping_add(stripe.sum_ns.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistSnapshot {
            buckets,
            sum_ns,
            count,
        }
    }
}

/// A merged, immutable view of a [`Histogram`].
#[derive(Clone)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_ns: u64,
    /// Total number of recorded durations.
    pub count: u64,
}

impl HistSnapshot {
    /// The `q`-quantile (0.0 ..= 1.0) as the upper edge of the bucket the
    /// quantile falls in — a conservative estimate whose error is bounded
    /// by the bucket width. Returns `None` for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper_ns(i).unwrap_or(1 << (MAX_EXP + 1)));
            }
        }
        None
    }

    /// Shorthand seconds-valued quantile for human-facing stats.
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        for exp in 0..63u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << exp) + off;
                let idx = bucket_index(v);
                assert!(idx < BUCKETS);
                assert!(idx >= last, "bucket index must not decrease: {v}");
                last = idx;
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn bucket_edges_are_strictly_increasing() {
        let mut prev = 0u64;
        for i in 0..BUCKETS - 1 {
            let up = bucket_upper_ns(i).unwrap();
            assert!(up > prev, "edge {i} not increasing");
            prev = up;
        }
        assert!(bucket_upper_ns(BUCKETS - 1).is_none());
    }

    #[test]
    fn values_land_below_their_upper_edge() {
        for v in [1u64, 255, 256, 257, 1000, 4096, 1 << 20, (1 << 36) - 1] {
            let idx = bucket_index(v);
            if let Some(up) = bucket_upper_ns(idx) {
                assert!(v.max(1 << MIN_EXP) < up, "value {v} at/above edge {up}");
            }
            if idx > 0 {
                let lower = bucket_upper_ns(idx - 1).unwrap();
                assert!(
                    v.max(1 << MIN_EXP) >= lower,
                    "value {v} below lower {lower}"
                );
            }
        }
    }

    #[test]
    fn record_and_quantile_roundtrip() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(1_000); // 1 µs
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // 1 ms
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum_ns, 90 * 1_000 + 10 * 1_000_000);
        let p50 = snap.quantile_ns(0.50).unwrap();
        assert!((1_000..=1_280).contains(&p50), "p50 = {p50}");
        let p99 = snap.quantile_ns(0.99).unwrap();
        assert!((1_000_000..=1_310_720).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert!(Histogram::new().snapshot().quantile_ns(0.99).is_none());
    }
}
