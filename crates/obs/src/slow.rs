//! Bounded ring of the N slowest operations observed so far.
//!
//! The ring keeps the slowest [`SlowRing::capacity`] spans with their
//! attributes, not the most recent ones — a burst of fast ops can never
//! evict evidence of a stall. The hot-path cost for an op that is *not*
//! slow is one relaxed atomic load: once the ring is full, `threshold_ns`
//! holds the duration of the fastest resident entry and anything faster is
//! rejected without taking the lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One attribute attached to a slow operation.
#[derive(Debug, Clone)]
pub enum AttrValue {
    /// An integer attribute (token count, batch size, shard id, ...).
    U64(u64),
    /// A string attribute (service name, ...).
    Str(String),
}

/// A captured slow operation.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// The span name, e.g. `"seqd.flush"`.
    pub name: &'static str,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Unix timestamp (seconds) when the op finished.
    pub unix_secs: u64,
    /// Monotone capture sequence number (process-wide order of insertion).
    pub seq: u64,
    /// Attributes attached via [`crate::span::Span::attr`].
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// The slow-op ring buffer. See module docs for semantics.
pub struct SlowRing {
    capacity: usize,
    threshold_ns: AtomicU64,
    next_seq: AtomicU64,
    ops: Mutex<Vec<SlowOp>>,
}

impl SlowRing {
    /// A ring retaining the `capacity` slowest operations.
    pub fn new(capacity: usize) -> SlowRing {
        SlowRing {
            capacity: capacity.max(1),
            threshold_ns: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            ops: Mutex::new(Vec::new()),
        }
    }

    /// Maximum number of retained operations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fast check: could an op of `dur_ns` enter the ring right now?
    #[inline]
    pub fn admits(&self, dur_ns: u64) -> bool {
        dur_ns > self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Offer an operation; inserts only if it is among the slowest seen.
    pub fn offer(&self, name: &'static str, dur_ns: u64, attrs: Vec<(&'static str, AttrValue)>) {
        if !self.admits(dur_ns) {
            return;
        }
        let unix_secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: the threshold may have risen.
        if ops.len() >= self.capacity {
            let (min_idx, min_dur) = ops
                .iter()
                .enumerate()
                .map(|(i, o)| (i, o.dur_ns))
                .min_by_key(|&(_, d)| d)
                .expect("ring is non-empty when full");
            if dur_ns <= min_dur {
                return;
            }
            ops.swap_remove(min_idx);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        ops.push(SlowOp {
            name,
            dur_ns,
            unix_secs,
            seq,
            attrs,
        });
        if ops.len() >= self.capacity {
            let new_min = ops.iter().map(|o| o.dur_ns).min().unwrap_or(0);
            self.threshold_ns.store(new_min, Ordering::Relaxed);
        }
    }

    /// Snapshot the ring, slowest first.
    pub fn snapshot(&self) -> Vec<SlowOp> {
        let ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = ops.clone();
        out.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.seq.cmp(&b.seq)));
        out
    }

    /// Render the ring as a JSON array (hand-rolled: `obs` depends on
    /// nothing, including the in-tree `jsonlite`).
    pub fn to_json(&self) -> String {
        let ops = self.snapshot();
        let mut out = String::from("[");
        for (i, op) in ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"dur_ns\":{},\"dur_ms\":{:.3},\"unix_secs\":{},\"seq\":{},\"attrs\":{{",
                escape_json(op.name),
                op.dur_ns,
                op.dur_ns as f64 / 1e6,
                op.unix_secs,
                op.seq
            ));
            for (j, (k, v)) in op.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match v {
                    AttrValue::U64(n) => out.push_str(&format!("\"{}\":{}", escape_json(k), n)),
                    AttrValue::Str(s) => {
                        out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(s)))
                    }
                }
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_slowest_not_the_latest() {
        let ring = SlowRing::new(3);
        ring.offer("op", 100, Vec::new());
        ring.offer("op", 900, Vec::new());
        ring.offer("op", 500, Vec::new());
        // Ring is full; a faster op must not evict anything.
        ring.offer("op", 50, Vec::new());
        // A slower op evicts the current minimum (100).
        ring.offer("op", 700, Vec::new());
        let snap = ring.snapshot();
        let durs: Vec<u64> = snap.iter().map(|o| o.dur_ns).collect();
        assert_eq!(durs, vec![900, 700, 500]);
    }

    #[test]
    fn threshold_gate_engages_once_full() {
        let ring = SlowRing::new(2);
        assert!(ring.admits(1));
        ring.offer("op", 10, Vec::new());
        ring.offer("op", 20, Vec::new());
        assert!(!ring.admits(10));
        assert!(ring.admits(11));
    }

    #[test]
    fn json_dump_is_well_formed() {
        let ring = SlowRing::new(2);
        ring.offer(
            "seqd.flush",
            1_000_000,
            vec![
                ("service", AttrValue::Str("sshd \"x\"".into())),
                ("batch", AttrValue::U64(128)),
            ],
        );
        let json = ring.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"seqd.flush\""));
        assert!(json.contains("\"batch\":128"));
        assert!(json.contains("sshd \\\"x\\\""));
    }
}
