//! Span timers: measure a scope, record into a histogram on drop, and
//! offer the result to the slow-op ring.
//!
//! The cheap path is [`crate::span!`]: a per-call-site `OnceLock` caches
//! the `Arc<Histogram>` so steady-state cost is one `Instant::now()` pair,
//! two relaxed atomic adds, and one relaxed load for the slow-ring gate.

use crate::hist::Histogram;
use crate::registry::registry;
use crate::slow::AttrValue;
use std::sync::Arc;
use std::time::Instant;

/// An in-flight timed span. Records its duration when dropped.
pub struct Span {
    start: Instant,
    name: &'static str,
    hist: Arc<Histogram>,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Start a span over the given histogram. Prefer the [`crate::span!`]
    /// macro, which derives the metric name and caches the handle.
    pub fn start(name: &'static str, hist: Arc<Histogram>) -> Span {
        Span {
            start: Instant::now(),
            name,
            hist,
            attrs: Vec::new(),
        }
    }

    /// Attach an integer attribute (visible in `/debug/slow`).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.attrs.push((key, AttrValue::U64(value)));
    }

    /// Attach a string attribute (visible in `/debug/slow`). The string is
    /// only cloned here, so call it off the per-record hot path.
    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        self.attrs.push((key, AttrValue::Str(value.to_string())));
    }

    /// Elapsed time so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        self.hist.record_ns(ns);
        let ring = registry().slow();
        if ring.admits(ns) {
            ring.offer(self.name, ns, std::mem::take(&mut self.attrs));
        }
    }
}

/// Turn a dotted span name (`"seqd.flush"`) into its histogram metric name
/// (`"seqd_flush_seconds"`).
pub fn metric_name_for(span: &str) -> String {
    let mut out = String::with_capacity(span.len() + 8);
    for c in span.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out.push_str("_seconds");
    out
}

/// Non-macro span entry used by [`crate::span!`]; resolves and caches the
/// histogram handle in the call site's `OnceLock`.
pub fn enter_cached(
    name: &'static str,
    help: &'static str,
    cell: &'static std::sync::OnceLock<Arc<Histogram>>,
) -> Span {
    let hist = cell.get_or_init(|| {
        let metric = metric_name_for(name);
        registry().histogram(&metric, help)
    });
    Span::start(name, Arc::clone(hist))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_sanitizes_dots_and_dashes() {
        assert_eq!(metric_name_for("seqd.flush"), "seqd_flush_seconds");
        assert_eq!(metric_name_for("wal-fsync"), "wal_fsync_seconds");
    }

    #[test]
    fn span_records_into_its_histogram_on_drop() {
        let hist = Arc::new(Histogram::new());
        {
            let mut s = Span::start("test.op", Arc::clone(&hist));
            s.attr_u64("n", 7);
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum_ns >= 50_000, "sum = {}", snap.sum_ns);
    }
}
