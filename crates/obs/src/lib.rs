//! In-tree observability for the Sequence-RTG reproduction.
//!
//! The paper's pitch is production-readiness; this crate is the substrate
//! that lets the reproduction *prove* it: where does a millisecond go
//! between scan → match → analyse → flush → WAL fsync? It provides
//!
//! * [`hist::Histogram`] — log-linear (HDR-style) latency histograms with
//!   lock-free recording via per-thread stripes merged on scrape;
//! * [`span!`] — a scope timer that records into a named histogram on drop
//!   and offers itself to the slow-op ring;
//! * [`slow::SlowRing`] — a bounded buffer of the N *slowest* operations
//!   with their attributes (service, batch size, token count), dumped as
//!   JSON on `seqd`'s `/debug/slow`;
//! * [`registry`] — the process-global registry both `seqd` and the
//!   offline `evalharness` record into, rendered in Prometheus text
//!   format on `/metrics`;
//! * [`promlint`] — a linter for the Prometheus text format, run by
//!   `ci.sh` against a live scrape so the metrics contract (self-describing
//!   series, monotone buckets ending in `+Inf`, `_sum`/`_count`
//!   consistency, no duplicates, stable name set) is enforced forever.
//!
//! The crate is std-only and depends on nothing, keeping the workspace
//! hermetic; it sits at the bottom of the dependency graph so every other
//! crate can instrument its hot paths.

pub mod hist;
pub mod promlint;
pub mod registry;
pub mod slow;
pub mod span;

pub use hist::{HistSnapshot, Histogram};
pub use registry::{registry, Registry};
pub use slow::{AttrValue, SlowOp, SlowRing};
pub use span::Span;

/// Time the current scope into the histogram derived from the span name:
/// `span!("seqd.flush")` records into `seqd_flush_seconds`. The histogram
/// handle is resolved once per call site and cached in a `OnceLock`, so
/// the steady-state cost is an `Instant` pair plus two relaxed atomic
/// adds. Returns the [`Span`]; bind it (`let _span = ...`) so it lives to
/// the end of the scope, and use [`Span::attr_u64`]/[`Span::attr_str`] to
/// attach slow-op attributes.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, "latency of this pipeline stage in seconds")
    };
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::span::enter_cached($name, $help, &HANDLE)
    }};
}

/// Like [`span!`], but samples 1 in `2^rate_log2` calls — for paths so hot
/// that even two relaxed atomic adds per call would show up in the benches
/// (e.g. `sequence-core`'s per-message scan and trie match, which run at
/// >1M ops/s). The unsampled cost is one thread-local increment and a
/// branch. Sampled histograms undercount `_count` by the sampling factor;
/// their quantiles remain representative. Returns `Option<Span>` — bind it
/// (`let _s = ...`) so the sampled span lives to the end of the scope.
#[macro_export]
macro_rules! sampled_span {
    ($name:expr, $rate_log2:expr) => {{
        ::std::thread_local! {
            static TICK: ::std::cell::Cell<u32> = const { ::std::cell::Cell::new(0) };
        }
        let fire = TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v & ((1u32 << $rate_log2) - 1) == 0
        });
        if fire {
            Some($crate::span!(
                $name,
                "latency of this pipeline stage in seconds (sampled)"
            ))
        } else {
            None
        }
    }};
}

/// Resolve (once per call site) a named histogram from the global
/// registry: `histogram!("seqd_queue_wait_seconds", "time spent queued")`.
/// Use this instead of [`span!`] when the measured interval does not match
/// a lexical scope (e.g. stamped on queue push, recorded on pop).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().histogram($name, $help))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_registers_and_records() {
        {
            let mut s = crate::span!("obs.selftest");
            s.attr_u64("n", 1);
        }
        let snap = crate::registry()
            .snapshot("obs_selftest_seconds")
            .expect("span! must register its histogram");
        assert!(snap.count >= 1);
    }

    #[test]
    fn histogram_macro_returns_a_cached_handle() {
        let h = crate::histogram!("obs_selftest2_seconds", "test");
        h.record_ns(42_000);
        let snap = crate::registry().snapshot("obs_selftest2_seconds").unwrap();
        assert!(snap.count >= 1);
    }
}
