//! `promlint` — lint a Prometheus text exposition from a file or stdin.
//!
//! ```text
//! promlint [--names] [FILE]
//! ```
//!
//! Without flags, prints lint findings and exits non-zero if any. With
//! `--names`, prints the sorted metric-family name set (one per line) —
//! `ci.sh` diffs this against `tests/golden/metrics_names.txt`.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut names_only = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--names" => names_only = true,
            "-h" | "--help" => {
                eprintln!("usage: promlint [--names] [FILE]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("promlint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let text = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promlint: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promlint: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            buf
        }
    };
    if names_only {
        for name in obs::promlint::metric_names(&text) {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let errors = obs::promlint::lint(&text);
    if errors.is_empty() {
        println!(
            "promlint: OK ({} metric families)",
            obs::promlint::metric_names(&text).len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("promlint: {e}");
        }
        eprintln!("promlint: {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}
