//! Property: histogram recording and cross-thread stripe merge are
//! lossless — after N threads record disjoint slices of a workload, the
//! merged snapshot has exactly the workload's count and sum, and every
//! quantile is within one bucket width of the exact (sorted) quantile.

use obs::hist::{bucket_index, bucket_upper_ns, Histogram, MIN_EXP};
use std::sync::Arc;
use testkit::prop::{self, Config, Strategy};

/// Exact quantile of a sorted slice, by the same ceil-rank rule the
/// histogram uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[test]
fn merge_is_lossless_and_quantiles_are_bucket_accurate() {
    let durations = prop::vec(prop::range(1u64..200_000_000), 1..400);
    let threads = prop::range(1usize..9);
    let strategy = prop::from_fn(move |rng| (durations.generate(rng), threads.generate(rng)));
    prop::check(&Config::cases(60), &strategy, |(values, nthreads)| {
        let hist = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(*nthreads)) {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for &v in chunk {
                        hist.record_ns(v);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        if snap.count != values.len() as u64 {
            return Err(format!(
                "count lost in merge: {} != {}",
                snap.count,
                values.len()
            ));
        }
        let expect_sum: u64 = values.iter().sum();
        if snap.sum_ns != expect_sum {
            return Err(format!(
                "sum lost in merge: {} != {expect_sum}",
                snap.sum_ns
            ));
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = snap.quantile_ns(q).expect("non-empty");
            let exact = exact_quantile(&sorted, q).max(1 << MIN_EXP);
            // The estimate is the upper edge of the exact value's bucket:
            // error is bounded by that bucket's width.
            let idx = bucket_index(exact);
            let upper = bucket_upper_ns(idx).unwrap_or(u64::MAX);
            let lower = if idx == 0 {
                0
            } else {
                bucket_upper_ns(idx - 1).unwrap()
            };
            if est < lower || est > upper {
                return Err(format!(
                    "q{q}: estimate {est} outside bucket [{lower}, {upper}] of exact {exact}"
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn concurrent_recording_from_many_threads_loses_nothing() {
    // A heavier fixed-shape stress: 8 threads × 50k records each.
    let hist = Arc::new(Histogram::new());
    let per_thread = 50_000u64;
    let nthreads = 8u64;
    std::thread::scope(|scope| {
        for t in 0..nthreads {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                let mut rng = testkit::Rng::seed_from_u64(0xC0FFEE ^ t);
                for _ in 0..per_thread {
                    hist.record_ns(rng.gen_range(100u64..50_000_000));
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, per_thread * nthreads);
}
