//! Determinism of the LogHub-2.0-scale corpus generators.
//!
//! The accuracy harness and its CI gate rest on seed→corpus being a pure
//! function: the recorded `results/BENCH_accuracy.baseline.json` is only
//! comparable to a live re-score if the same seed regenerates the same
//! corpus, byte for byte. Two properties pin that down for every family:
//!
//! 1. **Replay**: `stream(family, n, seed)` collected twice is identical —
//!    raw, content, pre-processed, and label on every line.
//! 2. **Chunk independence**: draining the stream in chunks of any size
//!    (the property input) equals one full collect, so a consumer that
//!    batches lines (the harness, a loadgen, a file writer) sees the exact
//!    corpus a one-shot consumer sees — the "streaming emission, no
//!    full-corpus buffering" contract.

use sequence_rtg_repro::loghub_synth::loghub2::{self, LOGHUB2_FAMILIES};
use sequence_rtg_repro::loghub_synth::LabeledLine;
use testkit::prop::{self, Config};
use testkit::prop_assert;
use testkit::rng::Rng;

#[test]
fn same_seed_same_corpus_chunk_size_free_for_all_families() {
    let config = Config::cases(28).with_regressions(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/proptest-regressions/loghub2_determinism.txt"
    ));
    prop::check(&config, &prop::range(0u64..u64::MAX), |&case_seed| {
        let mut rng = Rng::seed_from_u64(case_seed);
        // Every case exercises a different (family, n, corpus seed, chunk
        // size); 28 cases cover each of the 14 families at least twice.
        let family = LOGHUB2_FAMILIES[rng.gen_range(0..LOGHUB2_FAMILIES.len())];
        let n = 1 + (rng.bounded(300) as usize);
        let corpus_seed = rng.gen_range(0..u64::MAX);
        let chunk = 1 + (rng.bounded(97) as usize);

        let full: Vec<LabeledLine> = loghub2::stream(family, n, corpus_seed).collect();
        prop_assert!(full.len() == n, "{family}: {} of {n} lines", full.len());

        let replay: Vec<LabeledLine> = loghub2::stream(family, n, corpus_seed).collect();
        prop_assert!(
            replay == full,
            "{family} seed {corpus_seed}: replay diverged from first draw"
        );

        let mut chunked = Vec::with_capacity(n);
        let mut s = loghub2::stream(family, n, corpus_seed);
        loop {
            let piece: Vec<LabeledLine> = s.by_ref().take(chunk).collect();
            if piece.is_empty() {
                break;
            }
            chunked.extend(piece);
        }
        prop_assert!(
            chunked == full,
            "{family} seed {corpus_seed}: chunk size {chunk} changed the corpus"
        );

        // A different seed must actually move the line sampling (the labels
        // come from the same frozen catalog, but the draw order differs).
        // n == 1 draws can collide legitimately; skip the tiny cases.
        if n >= 50 {
            let other: Vec<LabeledLine> = loghub2::stream(family, n, corpus_seed ^ 1).collect();
            prop_assert!(
                other != full,
                "{family}: seeds {corpus_seed} and {} produced identical corpora",
                corpus_seed ^ 1
            );
        }
        Ok(())
    });
}

#[test]
fn catalog_counts_hold_for_every_family() {
    // The published LogHub-2.0 template counts are the contract the
    // harness's catalog_templates column reports; pin all 14.
    for name in LOGHUB2_FAMILIES {
        let p = loghub2::profile(name);
        assert_eq!(loghub2::catalog(name).len(), p.templates, "{name}");
        assert!(p.published_lines > 20_000, "{name}");
    }
    assert_eq!(loghub2::profile("Thunderbird").templates, 1241);
    assert_eq!(loghub2::profile("HDFS").templates, 46);
}

#[test]
fn streaming_is_constant_memory_scale_smoke() {
    // A multi-hundred-thousand-line draw through the iterator touches every
    // line exactly once without collecting; this is the scaled stand-in for
    // the multi-million-line generation mode (same code path, more laps).
    let mut count = 0usize;
    let mut label_checksum = 0u64;
    for line in loghub2::stream("HDFS", 200_000, 42) {
        count += 1;
        label_checksum = label_checksum
            .wrapping_mul(31)
            .wrapping_add(line.event.len() as u64);
        debug_assert!(!line.raw.is_empty());
    }
    assert_eq!(count, 200_000);
    assert!(label_checksum != 0);
}
