//! Corpus-wide robustness: run the scanner, analyser and exporters over
//! every synthetic dataset and check structural invariants on realistic
//! content — headers with exotic timestamps, `|`-separated fields, masked
//! `<*>` markers, multi-byte text.

use sequence_rtg_repro::loghub_synth::{generate, DATASET_NAMES};
use sequence_rtg_repro::patterndb::export::{export_patterns, ExportFormat, ExportSelection};
use sequence_rtg_repro::sequence_core::{Scanner, TokenType};
use sequence_rtg_repro::sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};

#[test]
fn scanner_handles_every_dataset_line() {
    let scanner = Scanner::new();
    for name in DATASET_NAMES {
        let d = generate(name, 300, 77);
        for line in &d.lines {
            let t = scanner.scan(&line.raw);
            assert!(!t.tokens.is_empty(), "{name}: no tokens for {:?}", line.raw);
            // Tokens concatenate back to the (single-spaced) message text.
            let rebuilt = t.reconstruct();
            let normalised: String = line.raw.split_whitespace().collect::<Vec<_>>().join(" ");
            let rebuilt_norm: String = rebuilt.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(
                rebuilt_norm, normalised,
                "{name}: token loss in {:?}",
                line.raw
            );
        }
    }
}

#[test]
fn headers_with_timestamps_scan_to_time_tokens() {
    let scanner = Scanner::new();
    // Services whose headers start with (or contain) a recognisable stamp.
    for (name, expect_rate) in [
        ("Hadoop", 0.95),
        ("Spark", 0.95),
        ("Windows", 0.95),
        ("OpenSSH", 0.95),
        ("BGL", 0.95),
    ] {
        let d = generate(name, 200, 3);
        let with_time = d
            .lines
            .iter()
            .filter(|l| {
                scanner
                    .scan(&l.raw)
                    .tokens
                    .iter()
                    .any(|t| t.ty == TokenType::Time)
            })
            .count();
        let rate = with_time as f64 / d.lines.len() as f64;
        assert!(
            rate >= expect_rate,
            "{name}: only {rate:.2} of lines have a Time token"
        );
    }
}

#[test]
fn healthapp_headers_mostly_lack_time_tokens_by_default() {
    // The designed failure: most HealthApp stamps have a single-digit part
    // somewhere and the default FSM rejects them.
    let scanner = Scanner::new();
    let d = generate("HealthApp", 300, 3);
    let with_time = d
        .lines
        .iter()
        .filter(|l| {
            scanner
                .scan(&l.raw)
                .tokens
                .iter()
                .any(|t| t.ty == TokenType::Time)
        })
        .count();
    let rate = with_time as f64 / d.lines.len() as f64;
    assert!(
        rate < 0.6,
        "most HealthApp stamps must fail the default FSM: {rate:.2}"
    );
    assert!(
        rate > 0.05,
        "but the all-two-digit minority must succeed: {rate:.2}"
    );
}

#[test]
fn syslogng_export_is_well_formed_xml_for_real_mined_patterns() {
    let d = generate("OpenSSH", 800, 5);
    let records: Vec<LogRecord> = d
        .lines
        .iter()
        .map(|l| LogRecord::new("sshd", l.raw.as_str()))
        .collect();
    let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
    rtg.analyze_by_service(&records, 1).unwrap();
    let xml = export_patterns(
        rtg.store_mut(),
        ExportFormat::SyslogNg,
        ExportSelection::default(),
    )
    .unwrap();
    check_balanced_xml(&xml);
    // Raw examples contain timestamps with digits and colons; none of that
    // may leak outside escaped text.
    assert!(!xml.contains("]]>"));
}

/// A minimal XML well-formedness check: tags balance and nest properly,
/// text regions contain no bare `<`/`>`/`&`.
fn check_balanced_xml(xml: &str) {
    let mut stack: Vec<String> = Vec::new();
    let mut rest = xml;
    // Skip the declaration.
    if let Some(pos) = rest.find("?>") {
        rest = &rest[pos + 2..];
    }
    while let Some(open) = rest.find('<') {
        let text = &rest[..open];
        assert!(
            !text.contains('>'),
            "bare '>' in text near {:?}",
            &text[..text.len().min(40)]
        );
        assert!(
            !text.contains('&')
                || text.contains("&amp;")
                || text.contains("&lt;")
                || text.contains("&gt;")
                || text.contains("&apos;")
                || text.contains("&quot;"),
            "bare '&' in text"
        );
        let close = rest[open..].find('>').expect("unterminated tag") + open;
        let tag = &rest[open + 1..close];
        if let Some(stripped) = tag.strip_prefix("!--") {
            let _ = stripped;
            // comment: skip to -->
            let end = rest.find("-->").expect("unterminated comment");
            rest = &rest[end + 3..];
            continue;
        }
        if let Some(name) = tag.strip_prefix('/') {
            let top = stack
                .pop()
                .unwrap_or_else(|| panic!("close without open: </{name}>"));
            assert_eq!(top, name, "mismatched close tag");
        } else if !tag.ends_with('/') {
            let name: String = tag
                .split(|c: char| c.is_whitespace())
                .next()
                .unwrap_or("")
                .to_string();
            stack.push(name);
        }
        rest = &rest[close + 1..];
    }
    assert!(stack.is_empty(), "unclosed tags: {stack:?}");
}

#[test]
fn grok_and_yaml_exports_cover_all_patterns() {
    let d = generate("HDFS", 600, 6);
    let records: Vec<LogRecord> = d
        .lines
        .iter()
        .map(|l| LogRecord::new("hdfs", l.raw.as_str()))
        .collect();
    let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
    let report = rtg.analyze_by_service(&records, 1).unwrap();
    let grok = export_patterns(
        rtg.store_mut(),
        ExportFormat::Grok,
        ExportSelection::default(),
    )
    .unwrap();
    let yaml = export_patterns(
        rtg.store_mut(),
        ExportFormat::Yaml,
        ExportSelection::default(),
    )
    .unwrap();
    assert_eq!(grok.matches("filter {").count() as u64, report.new_patterns);
    assert_eq!(yaml.matches("- id: ").count() as u64, report.new_patterns);
}

#[test]
fn extended_scanner_improves_healthapp_consistency() {
    use sequence_rtg_repro::sequence_core::ScannerOptions;
    let d = generate("HealthApp", 400, 9);
    let default_scanner = Scanner::new();
    let extended = Scanner::with_options(ScannerOptions::extended());
    let distinct_counts = |scanner: &Scanner| -> std::collections::HashSet<usize> {
        d.lines
            .iter()
            .map(|l| scanner.scan(&l.raw).token_count())
            .collect()
    };
    // With the future-work fix every header folds into one Time token, so
    // the number of distinct token-count shapes shrinks.
    let default_shapes = distinct_counts(&default_scanner).len();
    let extended_shapes = distinct_counts(&extended).len();
    assert!(
        extended_shapes < default_shapes,
        "extended scanner unifies shapes: {extended_shapes} vs {default_shapes}"
    );
}
