//! End-to-end test of the `seqd` daemon: real sockets, a real on-disk
//! pattern store, and equivalence with the offline batch pipeline.
//!
//! The daemon is started with one shard and a batch size of 5 000, then fed
//! two 5 000-record loghub-synth corpora over TCP. With a single shard the
//! daemon's behaviour is deterministic and must equal the offline reference:
//!
//! * corpus A arrives against an empty store, so every record is unmatched
//!   residue and the 5 000th triggers a re-mine — exactly
//!   `analyze_by_service(A)`;
//! * corpus B (same services, fresh slot values) is matched against the
//!   published sets; only its unmatched residue is mined at the final
//!   drain flush — exactly `analyze_by_service(B-residue)` on the reference.
//!
//! Asserted: (a) `/patterns` equals the reference pattern sets, (b) the
//! `/metrics` counters reconcile, (c) after `POST /shutdown` the on-disk
//! store reopens with the reference pattern count.

use sequence_rtg_repro::patterndb::PatternStore;
use sequence_rtg_repro::seqd::loadgen;
use sequence_rtg_repro::seqd::server::{start, SeqdConfig};
use sequence_rtg_repro::sequence_core::{MatchScratch, Scanner};
use sequence_rtg_repro::sequence_rtg::{LogRecord, SequenceRtg};
use sequence_rtg_repro::{jsonlite, loghub_synth};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

fn corpus(seed: u64, total: usize) -> Vec<LogRecord> {
    loghub_synth::generate_stream(loghub_synth::CorpusConfig {
        services: 6,
        total,
        seed,
    })
    .into_iter()
    .map(|item| LogRecord::new(item.service, item.message))
    .collect()
}

/// Poll `/stats` until the daemon has completed `n` re-mining runs.
fn wait_for_remines(addr: std::net::SocketAddr, n: i64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let stats = loadgen::control_get(addr, "/stats").expect("/stats");
        let v = jsonlite::parse(&stats).expect("stats json");
        if v.get("remine_runs").and_then(|x| x.as_i64()).unwrap_or(0) >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached {n} re-mines; last stats: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The published patterns as (service, rendered pattern) pairs, via HTTP.
fn served_patterns(addr: std::net::SocketAddr) -> BTreeSet<(String, String)> {
    let listing = loadgen::control_get(addr, "/patterns").expect("/patterns");
    let listing = jsonlite::parse(&listing).expect("listing json");
    let mut out = BTreeSet::new();
    for entry in listing.get("services").unwrap().as_array().unwrap() {
        let service = entry.get("service").unwrap().as_str().unwrap();
        let body = loadgen::control_get(addr, &format!("/patterns?service={service}"))
            .expect("/patterns?service=");
        let v = jsonlite::parse(&body).expect("patterns json");
        for p in v.get("patterns").unwrap().as_array().unwrap() {
            out.insert((
                service.to_string(),
                p.get("pattern").unwrap().as_str().unwrap().to_string(),
            ));
        }
    }
    out
}

#[test]
fn daemon_matches_batch_pipeline_and_survives_restart() {
    const BATCH: usize = 5_000;
    let corpus_a = corpus(101, BATCH);
    let corpus_b = corpus(202, BATCH);

    let dir = std::env::temp_dir().join(format!("seqd-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One shard + queue wide enough for a whole corpus keeps the daemon's
    // processing order identical to the offline reference.
    let config = SeqdConfig {
        shards: 1,
        batch_size: BATCH,
        queue_capacity: 2 * BATCH,
        ..SeqdConfig::default()
    };
    let store = PatternStore::open(&dir).expect("open store");
    let handle = start(store, config.clone(), "127.0.0.1:0").expect("start daemon");
    let addr = handle.addr();

    // --- Corpus A: everything is novel; the 5 000th record triggers a
    // re-mine of the full corpus.
    let receipt = loadgen::replay_records(addr, &corpus_a).expect("replay A");
    assert_eq!(receipt.accepted, BATCH as u64, "receipt: {receipt:?}");
    assert_eq!(receipt.rejected + receipt.malformed, 0);
    wait_for_remines(addr, 1, Duration::from_secs(120));

    // --- Corpus B: matched against the published sets; the residue is
    // mined at the drain flush.
    let receipt = loadgen::replay_records(addr, &corpus_b).expect("replay B");
    assert_eq!(receipt.accepted, BATCH as u64);
    loadgen::wait_until_processed(addr, 2 * BATCH as u64, Duration::from_secs(120))
        .expect("drain corpus B");

    // (b) The /metrics counters reconcile once nothing is in flight.
    let metrics = loadgen::control_get(addr, "/metrics").expect("/metrics");
    let series = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {name} missing in:\n{metrics}"))
    };
    let ingested = series("seqd_ingested_total");
    assert_eq!(ingested, 2 * BATCH as u64);
    assert_eq!(
        ingested,
        series("seqd_matched_total")
            + series("seqd_unmatched_total")
            + series("seqd_rejected_total")
            + series("seqd_malformed_total"),
        "metrics must reconcile:\n{metrics}"
    );
    assert!(series("seqd_remine_runs_total") >= 1);

    // --- Offline reference: the same two corpora through the batch
    // pipeline with the same mining configuration.
    let mut reference = SequenceRtg::in_memory(config.rtg);
    reference
        .analyze_by_service(&corpus_a, 1)
        .expect("analyze A");
    let scanner = Scanner::with_options(config.rtg.scanner);
    let mut scratch = MatchScratch::default();
    let residue_b: Vec<LogRecord> = corpus_b
        .iter()
        .filter(|r| {
            let scanned = scanner.scan_parse_only(&r.message);
            reference
                .pattern_set(&r.service)
                .and_then(|set| set.match_message_with(&scanned, &mut scratch))
                .is_none()
        })
        .cloned()
        .collect();
    let matched_b = (corpus_b.len() - residue_b.len()) as u64;
    assert!(matched_b > 0, "corpus B should re-use corpus A's patterns");
    assert_eq!(series("seqd_matched_total"), matched_b);

    // The daemon mines its remaining residue on shutdown; mirror it.
    if !residue_b.is_empty() {
        reference
            .analyze_by_service(&residue_b, 2)
            .expect("analyze B residue");
    }

    // (a) The served patterns equal the reference pipeline's pattern sets.
    let expected: BTreeSet<(String, String)> = reference
        .pattern_sets()
        .iter()
        .flat_map(|(service, set)| set.iter().map(move |(_, p)| (service.clone(), p.render())))
        .collect();
    let reference_count = expected.len() as u64;

    // (c) POST /shutdown drains, flushes the residue, checkpoints.
    loadgen::control_post(addr, "/shutdown").expect("shutdown");
    let finals = handle.join().expect("join");
    assert!(finals.reconciles(), "{finals:?}");
    assert_eq!(finals.ingested, 2 * BATCH as u64);
    assert_eq!(finals.matched, matched_b);
    let expected_remines = if residue_b.is_empty() { 1 } else { 2 };
    assert_eq!(finals.remines, expected_remines);

    // Patterns served over HTTP before shutdown were corpus-A-only; the
    // full comparison needs the post-drain store. Reopen it.
    let store = PatternStore::open(&dir).expect("reopen store");
    let mut reloaded = SequenceRtg::new(store, config.rtg).expect("reload");
    let served: BTreeSet<(String, String)> = reloaded
        .pattern_sets()
        .iter()
        .flat_map(|(service, set)| set.iter().map(move |(_, p)| (service.clone(), p.render())))
        .collect();
    assert_eq!(served, expected, "daemon store must equal batch pipeline");
    assert_eq!(
        reloaded.store_mut().pattern_count().expect("count"),
        reference_count,
        "reopened store pattern count must match the reference"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The `/patterns` control endpoint serves the same sets the daemon matches
/// with, while it is running.
#[test]
fn served_patterns_match_reference_after_first_mine() {
    const BATCH: usize = 2_500;
    let corpus_a = corpus(77, BATCH);
    let config = SeqdConfig {
        shards: 1,
        batch_size: BATCH,
        queue_capacity: 2 * BATCH,
        ..SeqdConfig::default()
    };
    let handle = start(PatternStore::in_memory(), config.clone(), "127.0.0.1:0").expect("start");
    let addr = handle.addr();
    loadgen::replay_records(addr, &corpus_a).expect("replay");
    wait_for_remines(addr, 1, Duration::from_secs(120));

    let mut reference = SequenceRtg::in_memory(config.rtg);
    reference.analyze_by_service(&corpus_a, 1).expect("analyze");
    let expected: BTreeSet<(String, String)> = reference
        .pattern_sets()
        .iter()
        .flat_map(|(service, set)| set.iter().map(move |(_, p)| (service.clone(), p.render())))
        .collect();
    assert!(!expected.is_empty());
    assert_eq!(served_patterns(addr), expected);

    handle.initiate_shutdown();
    handle.join().expect("join");
}
