//! Property test: the compiled discrimination-trie matcher behind
//! [`PatternSet::match_message`] returns bit-for-bit the same outcome —
//! winning pattern id *and* captures — as the naive linear reference scan
//! ([`PatternSet::match_message_linear`]), on randomly generated pattern
//! sets and messages. Coverage deliberately includes ignore-rest patterns,
//! predicate-guarded email/hostname variables, structural duplicates (exact
//! specificity ties resolved by insertion order) and messages that match
//! nothing.

use sequence_rtg_repro::sequence_core::{
    MatchScratch, Pattern, PatternSet, Scanner, TokenizedMessage,
};
use testkit::prop::{self, Config, Strategy};
use testkit::prop_assert_eq;
use testkit::rng::Rng;

const VOCAB: &[&str] = &[
    "session", "opened", "closed", "for", "from", "port", "worker", "panic", "alpha", "beta",
    "gamma", "failed", "retry", "22",
];

/// `(pattern_id, pattern_text)` pairs plus raw messages to match.
#[derive(Clone, Debug)]
struct Case {
    patterns: Vec<(String, String)>,
    messages: Vec<String>,
}

struct MatcherCase;

impl Strategy for MatcherCase {
    type Value = Case;

    fn generate(&self, rng: &mut Rng) -> Case {
        // Straddles PatternSet's small-set linear cutoff (32), so the
        // properties pin both dispatch arms.
        let n_patterns = rng.gen_range(1..60usize);
        let mut patterns: Vec<(String, String)> = Vec::with_capacity(n_patterns);
        for i in 0..n_patterns {
            // Structural duplicates force exact specificity ties, which the
            // trie must resolve by insertion order just like the linear scan.
            let text = if i > 0 && rng.gen_bool(0.2) {
                patterns[rng.gen_range(0..i)].1.clone()
            } else {
                gen_pattern(rng)
            };
            patterns.push((format!("p{i:02}"), text));
        }
        let n_messages = rng.gen_range(1..9usize);
        let messages = (0..n_messages)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    let donor = &patterns[rng.gen_range(0..patterns.len())].1;
                    instantiate(rng, donor)
                } else {
                    gen_soup(rng)
                }
            })
            .collect();
        Case { patterns, messages }
    }

    fn shrink(&self, case: &Case) -> Vec<Case> {
        let mut out = Vec::new();
        if case.patterns.len() > 1 {
            for i in 0..case.patterns.len() {
                let mut c = case.clone();
                c.patterns.remove(i);
                out.push(c);
            }
        }
        if case.messages.len() > 1 {
            for i in 0..case.messages.len() {
                let mut c = case.clone();
                c.messages.remove(i);
                out.push(c);
            }
        }
        out
    }
}

fn gen_pattern(rng: &mut Rng) -> String {
    let n = rng.gen_range(1..6usize);
    let mut parts: Vec<String> = Vec::with_capacity(n + 1);
    for pos in 0..n {
        if rng.gen_bool(0.55) {
            parts.push(rng.choose(VOCAB).unwrap().to_string());
        } else {
            let ty = *rng
                .choose(&["", ":integer", ":float", ":ipv4", ":email", ":host", ":hex"])
                .unwrap();
            parts.push(format!("%v{pos}{ty}%"));
        }
    }
    if rng.gen_bool(0.25) {
        parts.push("%...%".to_string());
    }
    parts.join(" ")
}

/// A message built to satisfy `pattern` (modulo scanner quirks — near-misses
/// are fine, the property holds either way).
fn instantiate(rng: &mut Rng, pattern: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    for part in pattern.split(' ') {
        words.push(match part {
            "%...%" => gen_soup(rng),
            v if v.starts_with('%') => {
                let text = if v.contains(":integer") {
                    format!("{}", rng.gen_range(0..100_000u32))
                } else if v.contains(":float") {
                    "3.25".to_string()
                } else if v.contains(":ipv4") {
                    format!(
                        "10.0.{}.{}",
                        rng.gen_range(0..256u32),
                        rng.gen_range(0..256u32)
                    )
                } else if v.contains(":email") {
                    "alice@example.com".to_string()
                } else if v.contains(":host") {
                    "node-1.example.org".to_string()
                } else if v.contains(":hex") {
                    "0xdeadbeef".to_string()
                } else {
                    // Free-text variable: any word that scans as a literal.
                    rng.choose(&["alice", "root", "eth0", "cron"])
                        .unwrap()
                        .to_string()
                };
                text
            }
            lit => lit.to_string(),
        });
    }
    words.retain(|w| !w.is_empty());
    words.join(" ")
}

fn gen_soup(rng: &mut Rng) -> String {
    let n = rng.gen_range(0..5usize);
    (0..n)
        .map(|_| rng.choose(VOCAB).unwrap().to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn build_set(case: &Case) -> (PatternSet, Vec<(String, Pattern)>) {
    let mut set = PatternSet::new();
    let mut parsed = Vec::new();
    for (id, text) in &case.patterns {
        let p = Pattern::parse(text).expect("generated patterns parse");
        set.insert(id.clone(), p.clone());
        parsed.push((id.clone(), p));
    }
    (set, parsed)
}

/// The compiled trie index (`match_message_indexed`, forced at every set
/// size) and the production dispatch (`match_message` /
/// `match_message_with`) all agree bit-for-bit with the naive linear
/// reference scan.
#[test]
fn trie_matches_linear_reference() {
    let scanner = Scanner::new();
    prop::check(&Config::cases(1200), &MatcherCase, |case| {
        let (set, _) = build_set(case);
        let mut scratch = MatchScratch::default();
        for m in &case.messages {
            let msg: TokenizedMessage = scanner.scan_parse_only(m);
            let linear = set.match_message_linear(&msg);
            prop_assert_eq!(
                &set.match_message_indexed(&msg, &mut scratch),
                &linear,
                "trie index on {:?}",
                m
            );
            prop_assert_eq!(&set.match_message(&msg), &linear, "message {:?}", m);
            prop_assert_eq!(
                &set.match_message_with(&msg, &mut scratch),
                &linear,
                "dispatch with scratch on {:?}",
                m
            );
        }
        Ok(())
    });
}

/// `match_all` returns exactly the linear set of matching patterns, in the
/// documented order: most literals first, then id, exact before ignore-rest,
/// then insertion order.
#[test]
fn match_all_matches_linear_reference() {
    let scanner = Scanner::new();
    prop::check(&Config::cases(600), &MatcherCase, |case| {
        let (set, parsed) = build_set(case);
        for m in &case.messages {
            let msg = scanner.scan_parse_only(m);
            let mut expected: Vec<(usize, &String)> = parsed
                .iter()
                .enumerate()
                .filter(|(_, (_, p))| p.match_tokens(&msg.tokens).is_some())
                .map(|(i, (id, _))| (i, id))
                .collect();
            expected.sort_by(|&(a, aid), &(b, bid)| {
                let pa = &parsed[a].1;
                let pb = &parsed[b].1;
                pb.literal_count()
                    .cmp(&pa.literal_count())
                    .then_with(|| aid.cmp(bid))
                    .then_with(|| pa.has_ignore_rest().cmp(&pb.has_ignore_rest()))
                    .then_with(|| a.cmp(&b))
            });
            let got: Vec<String> = set
                .match_all(&msg)
                .into_iter()
                .map(|o| o.pattern_id)
                .collect();
            let want: Vec<String> = expected.into_iter().map(|(_, id)| id.clone()).collect();
            prop_assert_eq!(&got, &want, "message {:?}", m);
        }
        Ok(())
    });
}
