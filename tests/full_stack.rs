//! The complete Fig. 6 production loop in one integration test, across every
//! crate in the workspace: stream → pattern-database match → logstore,
//! unmatched → Sequence-RTG → review (conflict resolution + promotion) →
//! pattern database; plus the volume anomaly detector watching the stream.

use sequence_rtg_repro::anomaly::{AlertKind, DetectorConfig, VolumeDetector};
use sequence_rtg_repro::loghub_synth::{generate_stream, CorpusConfig};
use sequence_rtg_repro::logstore::{date_histogram, match_split, search, LogSink, Query};
use sequence_rtg_repro::patterndb::ReviewQueue;
use sequence_rtg_repro::sequence_core::PatternSet;
use sequence_rtg_repro::sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};
use std::collections::HashMap;

#[test]
fn figure6_loop_end_to_end() {
    let mut rtg = SequenceRtg::in_memory(RtgConfig {
        save_threshold: 2,
        ..RtgConfig::default()
    });
    let mut promoted: HashMap<String, PatternSet> = HashMap::new();
    let mut detector = VolumeDetector::new(DetectorConfig {
        warmup_ticks: 2,
        window: 8,
        ..DetectorConfig::default()
    });

    let mut day2_sink = LogSink::new();
    for day in 1..=3u64 {
        let stream = generate_stream(CorpusConfig {
            services: 15,
            total: 3_000,
            seed: 40 + day,
        });
        let mut sink = LogSink::new();
        let mut unmatched = Vec::new();
        for (i, item) in stream.iter().enumerate() {
            detector.observe(&item.service, 1);
            let before = sink.unmatched();
            sink.ingest(
                promoted.get(&item.service),
                &item.service,
                day * 86_400 + i as u64,
                &item.message,
            );
            if sink.unmatched() > before {
                unmatched.push(LogRecord::new(item.service.as_str(), item.message.as_str()));
            }
        }
        // Steady daily volume: the detector must stay quiet.
        let alerts = detector.end_tick();
        assert!(
            alerts.iter().all(|a| a.kind != AlertKind::Burst),
            "steady traffic must not burst: {alerts:?}"
        );

        // Unmatched messages feed the miner.
        rtg.analyze_by_service(&unmatched, day).unwrap();

        // Administrator review: resolve conflicts, promote the queue.
        let candidates = rtg.store_mut().patterns(None).unwrap();
        for c in sequence_rtg_repro::patterndb::find_conflicts(&candidates) {
            let _ = sequence_rtg_repro::patterndb::resolve_conflict(rtg.store_mut(), &c);
        }
        let queue = ReviewQueue::build(rtg.store_mut()).unwrap();
        let decisions: Vec<_> = queue
            .items()
            .iter()
            .filter(|i| i.pattern.count >= 3 && i.pattern.complexity < 0.95)
            .map(|i| {
                (
                    i.pattern.id.clone(),
                    i.pattern.service.clone(),
                    i.pattern.pattern().ok(),
                )
            })
            .collect();
        for (id, service, parsed) in decisions {
            if let Some(p) = parsed {
                rtg.store_mut().promote(&id).unwrap();
                promoted.entry(service).or_default().insert(id, p);
            }
        }
        if day == 2 {
            day2_sink = sink;
        } else if day == 3 {
            // The headline effect: by day 3 most of the stream matches.
            assert!(
                sink.unmatched_ratio() < 0.35,
                "unmatched should collapse after promotions: {:.2}",
                sink.unmatched_ratio()
            );
            assert!(sink.unmatched_ratio() < day2_sink.unmatched_ratio() + 0.05);
        }
    }

    // The stored stream is queryable the way the paper promises.
    let idx = day2_sink.index();
    let (matched, unmatched) = match_split(idx, &Query::default());
    assert_eq!(matched + unmatched, 3_000);
    assert!(matched > 0);
    // Date histogram spans the day with full coverage.
    let buckets = date_histogram(idx, &Query::default(), 600);
    let total: u64 = buckets.iter().map(|b| b.count).sum();
    assert_eq!(total, 3_000);
    // Pattern-scoped search returns only matched docs.
    let hits = search(idx, &Query::parse("pattern:"));
    assert_eq!(hits.len() as u64, matched);
    assert!(hits.iter().all(|h| h.pattern_id.is_some()));

    // The promoted database is consistent with the store's flags.
    let flagged = rtg
        .store_mut()
        .patterns(None)
        .unwrap()
        .iter()
        .filter(|p| p.promoted)
        .count();
    let in_memory: usize = promoted.values().map(|s| s.len()).sum();
    assert_eq!(flagged, in_memory);
}

#[test]
fn figure6_loop_detects_injected_burst() {
    // Same loop, but one day carries a 30x burst in a single service: the
    // detector must flag exactly that service.
    let mut detector = VolumeDetector::new(DetectorConfig {
        warmup_ticks: 3,
        window: 8,
        ..DetectorConfig::default()
    });
    for day in 0..8u64 {
        let stream = generate_stream(CorpusConfig {
            services: 10,
            total: 1_500,
            seed: 90 + day,
        });
        for item in &stream {
            detector.observe(&item.service, 1);
        }
        if day == 7 {
            // A retry storm in one service.
            let storm_service = &stream[0].service;
            detector.observe(storm_service, 50_000);
            let alerts = detector.end_tick();
            assert!(
                alerts
                    .iter()
                    .any(|a| a.kind == AlertKind::Burst && a.service == *storm_service),
                "burst must be attributed to the right service: {alerts:?}"
            );
        } else {
            detector.end_tick();
        }
    }
}
