//! End-to-end integration: JSON stream → ingester → pipeline →
//! pattern store → export, across all the workspace crates.

use sequence_rtg_repro::loghub_synth::{generate_stream, to_json_lines, CorpusConfig};
use sequence_rtg_repro::patterndb::export::{export_patterns, ExportFormat, ExportSelection};
use sequence_rtg_repro::sequence_rtg::{Pipeline, RtgConfig, SequenceRtg, StreamIngester};
use std::io::Cursor;

fn run_stream(total: usize, batch_size: usize) -> Pipeline {
    let stream = generate_stream(CorpusConfig {
        services: 12,
        total,
        seed: 5,
    });
    let json = to_json_lines(&stream);
    let config = RtgConfig {
        batch_size,
        ..RtgConfig::default()
    };
    let mut pipeline = Pipeline::new(SequenceRtg::in_memory(config));
    let mut ingester = StreamIngester::new(Cursor::new(json), batch_size);
    while let Some(batch) = ingester.next_batch().unwrap() {
        for r in batch {
            pipeline.push(r, 1).unwrap();
        }
    }
    pipeline.flush(1).unwrap();
    pipeline
}

#[test]
fn stream_to_store_to_export() {
    let mut pipeline = run_stream(3_000, 500);
    let engine = pipeline.engine_mut();
    assert!(
        engine.total_known_patterns() > 20,
        "{}",
        engine.total_known_patterns()
    );

    // Every export format renders the mined store.
    for fmt in [
        ExportFormat::SyslogNg,
        ExportFormat::Yaml,
        ExportFormat::Grok,
    ] {
        let doc = export_patterns(engine.store_mut(), fmt, ExportSelection::default()).unwrap();
        assert!(
            doc.len() > 500,
            "export should be substantial: {} bytes",
            doc.len()
        );
    }
    let xml = export_patterns(
        engine.store_mut(),
        ExportFormat::SyslogNg,
        ExportSelection::default(),
    )
    .unwrap();
    assert!(xml.contains("<patterndb version='4'"));
    assert!(xml.contains("test_message"));
}

#[test]
fn later_batches_parse_against_earlier_patterns() {
    let mut pipeline = run_stream(6_000, 1_000);
    assert_eq!(pipeline.batches_run(), 6);
    // Re-run the same stream through the same engine: nearly everything
    // should now hit the parse-first path.
    let stream = generate_stream(CorpusConfig {
        services: 12,
        total: 1_000,
        seed: 6,
    });
    let records: Vec<_> = stream
        .iter()
        .map(|i| {
            sequence_rtg_repro::sequence_rtg::LogRecord::new(i.service.as_str(), i.message.as_str())
        })
        .collect();
    let report = pipeline
        .engine_mut()
        .analyze_by_service(&records, 2)
        .unwrap();
    let ratio = report.matched_ratio();
    assert!(
        ratio > 0.8,
        "most messages parse against mined patterns: {ratio}"
    );
}

#[test]
fn store_statistics_accumulate_across_batches() {
    let mut pipeline = run_stream(4_000, 800);
    let store = pipeline.engine_mut().store_mut();
    let patterns = store.patterns(None).unwrap();
    let total: u64 = patterns.iter().map(|p| p.count).sum();
    // Empty (tokenless) messages aside, every message is attributed to some
    // pattern either at parse or analysis time.
    assert!(total >= 3_900, "counts cover the stream: {total}");
    // Examples were captured.
    assert!(patterns.iter().all(|p| !p.examples.is_empty()));
    // Complexity scores are sane.
    assert!(patterns.iter().all(|p| (0.0..=1.0).contains(&p.complexity)));
}
