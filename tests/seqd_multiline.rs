//! Paper limitation #6 (multi-line messages) through the *daemon*, not just
//! the batch pipeline: a JSON-escaped `\n` survives the NDJSON wire intact,
//! mining truncates at the first newline and appends the ignore-rest
//! `%...%` tail, and the daemon ends up byte-identical to the offline
//! pipeline — pinned by a golden snapshot.
//!
//! The wire detail under test: `LogRecord::to_json_line` escapes embedded
//! newlines, so a multi-line message is *one* NDJSON line on the socket and
//! one WAL line on disk; nothing in the daemon path may split it.
//!
//! Regenerating after an intentional behaviour change:
//!
//! ```text
//! TESTKIT_REGEN_GOLDEN=1 cargo test --test seqd_multiline
//! git diff tests/golden/   # review, then commit
//! ```

use sequence_rtg_repro::jsonlite;
use sequence_rtg_repro::patterndb::PatternStore;
use sequence_rtg_repro::seqd::loadgen;
use sequence_rtg_repro::seqd::server::{start, SeqdConfig};
use sequence_rtg_repro::sequence_rtg::{LogRecord, SequenceRtg};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn corpus() -> Vec<LogRecord> {
    let mut records = Vec::new();
    // Multi-line exceptions: shared first line shape, per-record stacks.
    for (thread, stack) in [
        (
            "main",
            "  at Foo.bar(Foo.java:10)\n  at Main.main(Main.java:3)",
        ),
        ("worker", "  at Baz.qux(Baz.java:77)"),
        ("scheduler", "no stack available"),
    ] {
        records.push(LogRecord::new(
            "app",
            format!("Exception in thread {thread}\n{stack}"),
        ));
    }
    // Single-line control group on the same service.
    for user in ["alice", "bob", "carol"] {
        records.push(LogRecord::new(
            "app",
            format!("session opened for user {user}"),
        ));
    }
    records
}

/// Poll `/stats` until the daemon has completed `n` re-mining runs.
fn wait_for_remines(addr: std::net::SocketAddr, n: i64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let stats = loadgen::control_get(addr, "/stats").expect("/stats");
        let v = jsonlite::parse(&stats).expect("stats json");
        if v.get("remine_runs").and_then(|x| x.as_i64()).unwrap_or(0) >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached {n} re-mines; last stats: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn triples(engine: &mut SequenceRtg) -> BTreeSet<(String, String, u64)> {
    engine
        .store_mut()
        .patterns(None)
        .expect("patterns")
        .into_iter()
        .map(|p| (p.service, p.pattern_text, p.count))
        .collect()
}

fn render(triples: &BTreeSet<(String, String, u64)>) -> String {
    let mut out = String::from(
        "# golden snapshot: multi-line records through the seqd daemon\n\
         # regen: TESTKIT_REGEN_GOLDEN=1 cargo test --test seqd_multiline\n",
    );
    for (service, pattern, count) in triples {
        out.push_str(&format!("{count}\t{service}\t{pattern}\n"));
    }
    out
}

#[test]
fn multiline_records_mine_identically_through_the_daemon() {
    let corpus = corpus();
    let batch = corpus.len();
    let dir = std::env::temp_dir().join(format!("seqd-multiline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = SeqdConfig {
        shards: 1, // determinism: one worker, one flush order
        batch_size: batch,
        ..SeqdConfig::default()
    };
    let store = PatternStore::open(&dir).expect("open store");
    let handle = start(store, config.clone(), "127.0.0.1:0").expect("start");
    let addr = handle.addr();

    // Wave 1: every record novel; the batch-size-th record triggers the
    // re-mine. The receipt proves each multi-line message stayed ONE line.
    let receipt = loadgen::replay_records(addr, &corpus).expect("replay");
    assert_eq!(receipt.received, batch as u64, "{receipt:?}");
    assert_eq!(receipt.accepted, batch as u64, "{receipt:?}");
    assert_eq!(receipt.malformed, 0);
    wait_for_remines(addr, 1, Duration::from_secs(60));

    // Wave 2: a fresh multi-line exception with an unseen tail must match
    // the published ignore-rest pattern — truncation worked end to end.
    let followup = LogRecord::new("app", "Exception in thread reaper\nunique tail 12345");
    let receipt = loadgen::replay_records(addr, std::slice::from_ref(&followup)).expect("wave 2");
    assert_eq!(receipt.accepted, 1);
    loadgen::wait_until_processed(addr, (batch + 1) as u64, Duration::from_secs(60))
        .expect("drain");

    loadgen::control_post(addr, "/shutdown").expect("shutdown");
    let finals = handle.join().expect("join");
    assert!(finals.reconciles(), "{finals:?}");
    assert_eq!(finals.matched, 1, "the follow-up must match: {finals:?}");

    // Offline reference: same corpus, same config, same two waves.
    let mut reference = SequenceRtg::in_memory(config.rtg);
    reference.analyze_by_service(&corpus, 1).expect("reference");
    reference
        .analyze_by_service(std::slice::from_ref(&followup), 2)
        .expect("reference wave 2");
    let expected = triples(&mut reference);

    let store = PatternStore::open(&dir).expect("reopen");
    let mut recovered = SequenceRtg::new(store, config.rtg).expect("reload");
    let served = triples(&mut recovered);
    assert_eq!(served, expected, "daemon must equal the offline pipeline");

    // The exception pattern carries the ignore-rest marker.
    let exception = served
        .iter()
        .find(|(_, p, _)| p.starts_with("Exception in thread"))
        .expect("exception pattern");
    assert!(
        exception.1.ends_with("%...%"),
        "multi-line truncation must leave the ignore-rest tail: {}",
        exception.1
    );

    // Golden snapshot of the daemon-mined store.
    let actual = render(&served);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seqd_multiline.txt");
    if std::env::var_os("TESTKIT_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("regenerated {}", path.display());
    } else {
        let goldenfile = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); regenerate with \
                 TESTKIT_REGEN_GOLDEN=1 cargo test --test seqd_multiline",
                path.display()
            )
        });
        assert_eq!(
            actual, goldenfile,
            "daemon-mined patterns diverged from tests/golden/seqd_multiline.txt; if \
             intentional, regenerate with TESTKIT_REGEN_GOLDEN=1 cargo test --test seqd_multiline"
        );
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
