//! One integration test per claim the paper makes about Sequence-RTG: the
//! six addressed limitations (§III) plus the documented remaining
//! limitations (§IV) — both sides must reproduce.

use sequence_rtg_repro::sequence_core::{
    Analyzer, Pattern, PatternParseError, Scanner, ScannerOptions,
};
use sequence_rtg_repro::sequence_rtg::{LogRecord, RtgConfig, SequenceRtg, StreamIngester};
use std::io::Cursor;

/// Limitation 1: "Sequence expects to read from a single file from a single
/// source system" → Sequence-RTG ingests a composite JSON stream.
#[test]
fn limitation1_composite_stream_ingestion() {
    let json = concat!(
        "{\"service\":\"sshd\",\"message\":\"session opened for user root\"}\n",
        "{\"service\":\"nginx\",\"message\":\"GET /index.html 200\"}\n",
        "{\"service\":\"cron\",\"message\":\"job backup started\"}\n",
    );
    let mut ing = StreamIngester::new(Cursor::new(json.to_string()), 10);
    let batch = ing.next_batch().unwrap().unwrap();
    assert_eq!(batch.len(), 3);
    let services: Vec<&str> = batch.iter().map(|r| r.service.as_str()).collect();
    assert_eq!(services, vec!["sshd", "nginx", "cron"]);
}

/// Limitation 2: patterns persist in a database between executions instead
/// of a regenerated text file.
#[test]
fn limitation2_patterns_persist_between_executions() {
    let dir = std::env::temp_dir().join(format!("rtg-claim2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let batch: Vec<LogRecord> = (0..5)
        .map(|i| LogRecord::new("svc", format!("tick number {i} observed")))
        .collect();
    {
        let store = sequence_rtg_repro::patterndb::PatternStore::open(&dir).unwrap();
        let mut rtg = SequenceRtg::new(store, RtgConfig::default()).unwrap();
        let r = rtg.analyze_by_service(&batch, 1).unwrap();
        assert_eq!(r.new_patterns, 1);
        rtg.store_mut().checkpoint().unwrap();
    }
    {
        // A new execution loads the stored patterns and parses immediately.
        let store = sequence_rtg_repro::patterndb::PatternStore::open(&dir).unwrap();
        let mut rtg = SequenceRtg::new(store, RtgConfig::default()).unwrap();
        let r = rtg.analyze_by_service(&batch, 2).unwrap();
        assert_eq!(r.matched_known, 5);
        assert_eq!(r.new_patterns, 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Limitation 3: exact whitespace reconstruction — no spurious spaces
/// between tokens that were not separated in the original message.
#[test]
fn limitation3_exact_spacing_in_patterns() {
    let scanner = Scanner::new();
    let batch: Vec<_> = (0..3)
        .map(|i| scanner.scan(&format!("audit: pid={i}00 uid=0 res=success")))
        .collect();
    let out = Analyzer::new().analyze(&batch);
    assert_eq!(out.len(), 1);
    let rendered = out[0].pattern.render();
    // `pid=` has no space around `=`; the seminal Sequence would emit
    // `pid = % pid %`-style spacing.
    assert!(rendered.contains("pid=%pid:integer%"), "{rendered}");
    assert!(rendered.contains("uid=0"), "{rendered}");
}

/// Limitation 4: quality control demotes never-varying variables, which the
/// seminal analyser keeps.
#[test]
fn limitation4_variable_minimisation() {
    let scanner = Scanner::new();
    let batch: Vec<_> = (0..4)
        .map(|i| scanner.scan(&format!("request {i} finished with status 200 in 35 ms")))
        .collect();
    let rtg_out = Analyzer::new().analyze(&batch);
    let seminal_out = Analyzer::with_options(
        sequence_rtg_repro::sequence_core::AnalyzerOptions::seminal_sequence(),
    )
    .analyze(&batch);
    let rtg_vars = rtg_out[0].pattern.variable_count();
    let seminal_vars = seminal_out[0].pattern.variable_count();
    assert!(
        rtg_vars < seminal_vars,
        "quality control should reduce variables: {rtg_vars} vs {seminal_vars}"
    );
    // The constant status and duration are static text for RTG.
    assert!(
        rtg_out[0].pattern.render().contains("status 200"),
        "{}",
        rtg_out[0].pattern.render()
    );
}

/// Limitation 5: service partitioning keeps per-trie workloads bounded and
/// services isolated (no cross-service patterns).
#[test]
fn limitation5_service_partitioning_isolates_services() {
    let mut batch = Vec::new();
    for svc in ["a", "b"] {
        for i in 0..5 {
            batch.push(LogRecord::new(svc, format!("shared shape value {i}")));
        }
    }
    let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
    rtg.analyze_by_service(&batch, 1).unwrap();
    // Identical text, but one pattern per service with distinct ids.
    let patterns = rtg.store_mut().patterns(None).unwrap();
    assert_eq!(patterns.len(), 2);
    assert_ne!(patterns[0].id, patterns[1].id);
    assert_eq!(patterns[0].pattern_text, patterns[1].pattern_text);
}

/// Limitation 6: multi-line messages are truncated at the first line break
/// and matched with an ignore-rest marker.
#[test]
fn limitation6_multiline_messages() {
    let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
    let batch = vec![
        LogRecord::new(
            "app",
            "Exception in thread main\n  at Foo.bar(Foo.java:10)\n  at Main.main(Main.java:3)",
        ),
        LogRecord::new(
            "app",
            "Exception in thread worker\n  at Baz.qux(Baz.java:77)",
        ),
        LogRecord::new("app", "Exception in thread scheduler\nno stack available"),
    ];
    let r = rtg.analyze_by_service(&batch, 1).unwrap();
    assert_eq!(r.multiline, 3);
    let stored = rtg.store_mut().patterns(Some("app")).unwrap();
    assert_eq!(stored.len(), 1);
    assert!(
        stored[0].pattern_text.ends_with("%...%"),
        "{}",
        stored[0].pattern_text
    );
    // A new multi-line message with a totally different tail still matches.
    let r2 = rtg
        .analyze_by_service(
            &[LogRecord::new(
                "app",
                "Exception in thread reaper\nunique tail 12345",
            )],
            2,
        )
        .unwrap();
    assert_eq!(r2.matched_known, 1);
}

/// §IV remaining limitation: time stamps without leading zeros break the
/// default datetime FSM; the future-work option fixes them.
#[test]
fn remaining_limitation_single_digit_time_parts() {
    let default = Scanner::new();
    let fixed = Scanner::with_options(ScannerOptions {
        allow_single_digit_time: true,
        ..Default::default()
    });
    let msg = "20171224-0:7:20:444 calculateCaloriesWithCache totalCalories=391";
    let d = default.scan(msg);
    let f = fixed.scan(msg);
    assert!(
        f.token_count() < d.token_count(),
        "fixed FSM folds the stamp into one token"
    );
    assert_eq!(
        f.tokens[0].ty,
        sequence_rtg_repro::sequence_core::TokenType::Time
    );
}

/// §IV remaining limitation: a `%` sign in static pattern text causes an
/// unknown tag error at parsing time.
#[test]
fn remaining_limitation_percent_sign_unknown_tag() {
    let err = Pattern::parse("disk at 93% full on %device%").unwrap_err();
    assert!(matches!(err, PatternParseError::UnknownTag(_)));
}

/// §IV remaining limitation: one or two examples yield word-for-word or
/// under-generalised patterns; the save threshold is the mitigation.
#[test]
fn remaining_limitation_save_threshold_for_singletons() {
    let mut rtg = SequenceRtg::in_memory(RtgConfig {
        save_threshold: 2,
        ..RtgConfig::default()
    });
    let r = rtg
        .analyze_by_service(
            &[LogRecord::new("svc", "completely singular occurrence text")],
            1,
        )
        .unwrap();
    assert_eq!(r.new_patterns, 1);
    // ... but the save threshold prunes it right away.
    assert_eq!(rtg.store_mut().pattern_count().unwrap(), 0);
}
