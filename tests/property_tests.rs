//! Cross-crate property-based tests on the core invariants.

use proptest::prelude::*;
use sequence_rtg_repro::sequence_core::{Analyzer, Pattern, Scanner, ScannerOptions};

/// Strategy: log-message-ish strings (printable ASCII words, numbers, IPs,
/// punctuation, the odd timestamp).
fn arb_message() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        "[a-zA-Z][a-zA-Z0-9_.-]{0,11}",
        "[0-9]{1,8}",
        "(10|192)\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}",
        Just("pid=1234".to_string()),
        Just("[core]".to_string()),
        Just("2021-09-08 12:34:56".to_string()),
        Just("0xdeadbeef".to_string()),
        Just("done.".to_string()),
    ];
    prop::collection::vec(word, 1..10).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The scanner's `is_space_before` bookkeeping reconstructs any
    /// single-spaced message exactly (limitation 3).
    #[test]
    fn scanner_reconstructs_single_spaced_messages(msg in arb_message()) {
        let t = Scanner::new().scan(&msg);
        prop_assert_eq!(t.reconstruct(), msg);
    }

    /// Scanning is total and deterministic on arbitrary input.
    #[test]
    fn scanner_total_and_deterministic(msg in "\\PC{0,200}") {
        let a = Scanner::new().scan(&msg);
        let b = Scanner::new().scan(&msg);
        prop_assert_eq!(&a, &b);
        let ext = Scanner::with_options(ScannerOptions::extended()).scan(&msg);
        prop_assert_eq!(ext.raw, msg);
    }

    /// Every message that contributed to a mined pattern matches that
    /// pattern (analysis → parsing consistency).
    #[test]
    fn members_match_their_pattern(msgs in prop::collection::vec(arb_message(), 1..20)) {
        let scanner = Scanner::new();
        let scanned: Vec<_> = msgs.iter().map(|m| scanner.scan(m)).collect();
        let discovered = Analyzer::new().analyze(&scanned);
        for d in &discovered {
            for &mi in &d.member_indices {
                prop_assert!(
                    d.pattern.match_message(&scanned[mi as usize]).is_some(),
                    "message {:?} must match its own pattern {:?}",
                    msgs[mi as usize],
                    d.pattern.render()
                );
            }
        }
        // And membership covers every non-empty message exactly once.
        let mut covered: Vec<u32> = discovered.iter().flat_map(|d| d.member_indices.clone()).collect();
        covered.sort_unstable();
        let expected: Vec<u32> = (0..scanned.len() as u32)
            .filter(|&i| !scanned[i as usize].tokens.is_empty())
            .collect();
        prop_assert_eq!(covered, expected);
    }

    /// Mined patterns survive a render → parse round trip structurally.
    #[test]
    fn mined_patterns_round_trip(msgs in prop::collection::vec(arb_message(), 1..12)) {
        let scanner = Scanner::new();
        let scanned: Vec<_> = msgs.iter().map(|m| scanner.scan(m)).collect();
        for d in Analyzer::new().analyze(&scanned) {
            let text = d.pattern.render();
            match Pattern::parse(&text) {
                Ok(parsed) => prop_assert_eq!(
                    parsed.render(), text,
                    "re-render must be stable"
                ),
                // A literal containing `%` is the paper's documented
                // unknown-tag limitation — acceptable.
                Err(e) => prop_assert!(
                    text.contains('%'),
                    "unexpected parse failure {e} for {text:?}"
                ),
            }
        }
    }

    /// The pattern id is a pure function of (pattern text, service).
    #[test]
    fn pattern_ids_reproducible(text in "[a-z %]{1,40}", svc in "[a-z]{1,12}") {
        let a = sequence_rtg_repro::patterndb::pattern_id(&text, &svc);
        let b = sequence_rtg_repro::patterndb::pattern_id(&text, &svc);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 40);
        let other = sequence_rtg_repro::patterndb::pattern_id(&text, "different");
        prop_assert_ne!(a, other);
    }

    /// JSON stream round trip for arbitrary service names and messages
    /// (including newlines and quotes).
    #[test]
    fn stream_record_round_trip(svc in "[a-zA-Z0-9_-]{1,16}", msg in "\\PC{0,120}") {
        use sequence_rtg_repro::sequence_rtg::LogRecord;
        let r = LogRecord::new(svc, msg);
        let line = r.to_json_line();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(LogRecord::from_json_line(&line).unwrap(), r);
    }
}
