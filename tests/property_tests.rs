//! Cross-crate property-based tests on the core invariants
//! (testkit::prop; hermetic, seeded, shrinking).

use sequence_rtg_repro::sequence_core::{Analyzer, Pattern, Scanner, ScannerOptions};
use testkit::prop::{self, Config, Strategy};
use testkit::rng::Rng;
use testkit::{prop_assert, prop_assert_eq, prop_assert_ne};

/// Strategy: a log-message-ish token list (printable ASCII words, numbers,
/// IPs, punctuation, the odd timestamp). The value is the word list so the
/// runner can shrink by dropping words; properties join with single spaces.
struct MessageWords;

impl Strategy for MessageWords {
    type Value = Vec<String>;

    fn generate(&self, rng: &mut Rng) -> Vec<String> {
        let n = rng.gen_range(1..10usize);
        (0..n).map(|_| gen_word(rng)).collect()
    }

    fn shrink(&self, words: &Vec<String>) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        if words.len() > 1 {
            for i in 0..words.len() {
                let mut w = words.clone();
                w.remove(i);
                out.push(w);
            }
        }
        out
    }
}

fn gen_word(rng: &mut Rng) -> String {
    const IDENT_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const IDENT_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    match rng.gen_range(0..8u32) {
        0 => {
            let mut w = String::new();
            w.push(char::from(*rng.choose(IDENT_FIRST).unwrap()));
            for _ in 0..rng.gen_range(0..12usize) {
                w.push(char::from(*rng.choose(IDENT_REST).unwrap()));
            }
            w
        }
        1 => {
            let n = rng.gen_range(1..9usize);
            (0..n)
                .map(|_| char::from(rng.gen_range(b'0'..=b'9')))
                .collect()
        }
        2 => format!(
            "{}.{}.{}.{}",
            if rng.gen_bool(0.5) { 10 } else { 192 },
            rng.gen_range(0..1000),
            rng.gen_range(0..1000),
            rng.gen_range(0..1000)
        ),
        3 => "pid=1234".to_string(),
        4 => "[core]".to_string(),
        5 => "2021-09-08 12:34:56".to_string(),
        6 => "0xdeadbeef".to_string(),
        _ => "done.".to_string(),
    }
}

fn join(words: &[String]) -> String {
    words.join(" ")
}

/// The scanner's `is_space_before` bookkeeping reconstructs any
/// single-spaced message exactly (limitation 3).
#[test]
fn scanner_reconstructs_single_spaced_messages() {
    prop::check(&Config::cases(200), &MessageWords, |words| {
        let msg = join(words);
        let t = Scanner::new().scan(&msg);
        prop_assert_eq!(t.reconstruct(), msg);
        Ok(())
    });
}

/// Scanning is total and deterministic on arbitrary input.
#[test]
fn scanner_total_and_deterministic() {
    prop::check(&Config::cases(200), &prop::unicode_string(0..200), |msg| {
        let a = Scanner::new().scan(msg);
        let b = Scanner::new().scan(msg);
        prop_assert_eq!(&a, &b);
        let ext = Scanner::with_options(ScannerOptions::extended()).scan(msg);
        prop_assert_eq!(ext.raw_text().expect("scan() keeps raw"), msg.as_str());
        Ok(())
    });
}

/// Every message that contributed to a mined pattern matches that pattern
/// (analysis → parsing consistency), and membership covers every non-empty
/// message exactly once.
#[test]
fn members_match_their_pattern() {
    prop::check(
        &Config::cases(200),
        &prop::vec(MessageWords, 1..20),
        |msg_words| {
            let msgs: Vec<String> = msg_words.iter().map(|w| join(w)).collect();
            let scanner = Scanner::new();
            let scanned: Vec<_> = msgs.iter().map(|m| scanner.scan(m)).collect();
            let discovered = Analyzer::new().analyze(&scanned);
            for d in &discovered {
                for &mi in &d.member_indices {
                    prop_assert!(
                        d.pattern.match_message(&scanned[mi as usize]).is_some(),
                        "message {:?} must match its own pattern {:?}",
                        msgs[mi as usize],
                        d.pattern.render()
                    );
                }
            }
            let mut covered: Vec<u32> = discovered
                .iter()
                .flat_map(|d| d.member_indices.clone())
                .collect();
            covered.sort_unstable();
            let expected: Vec<u32> = (0..scanned.len() as u32)
                .filter(|&i| !scanned[i as usize].tokens.is_empty())
                .collect();
            prop_assert_eq!(covered, expected);
            Ok(())
        },
    );
}

/// Mined patterns survive a render → parse round trip structurally.
#[test]
fn mined_patterns_round_trip() {
    prop::check(
        &Config::cases(200),
        &prop::vec(MessageWords, 1..12),
        |msg_words| {
            let msgs: Vec<String> = msg_words.iter().map(|w| join(w)).collect();
            let scanner = Scanner::new();
            let scanned: Vec<_> = msgs.iter().map(|m| scanner.scan(m)).collect();
            for d in Analyzer::new().analyze(&scanned) {
                let text = d.pattern.render();
                match Pattern::parse(&text) {
                    Ok(parsed) => {
                        prop_assert_eq!(parsed.render(), text, "re-render must be stable")
                    }
                    // A literal containing `%` is the paper's documented
                    // unknown-tag limitation — acceptable.
                    Err(e) => prop_assert!(
                        text.contains('%'),
                        "unexpected parse failure {e} for {text:?}"
                    ),
                }
            }
            Ok(())
        },
    );
}

/// The pattern id is a pure function of (pattern text, service).
#[test]
fn pattern_ids_reproducible() {
    let strategy = (
        prop::string("abcdefghijklmnopqrstuvwxyz %", 1..41),
        prop::word(1..13),
    );
    prop::check(&Config::cases(200), &strategy, |(text, svc)| {
        let a = sequence_rtg_repro::patterndb::pattern_id(text, svc);
        let b = sequence_rtg_repro::patterndb::pattern_id(text, svc);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 40);
        let other = sequence_rtg_repro::patterndb::pattern_id(text, "different");
        prop_assert_ne!(a, other);
        Ok(())
    });
}

/// JSON stream round trip for arbitrary service names and messages
/// (including newlines and quotes).
#[test]
fn stream_record_round_trip() {
    let svc_chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
    let strategy = (prop::string(svc_chars, 1..17), prop::unicode_string(0..120));
    prop::check(&Config::cases(200), &strategy, |(svc, msg)| {
        use sequence_rtg_repro::sequence_rtg::LogRecord;
        let r = LogRecord::new(svc.clone(), msg.clone());
        let line = r.to_json_line();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(&LogRecord::from_json_line(&line).unwrap(), &r);
        Ok(())
    });
}
