//! Online evolution vs batch mining on the golden synthetic corpora.
//!
//! The evolving trie replaces batch re-mining on the daemon's hot path, so
//! it must not give up grouping quality to get there: streaming a dataset
//! one line at a time through [`ServiceEvolver`] (committing in small
//! slices, exactly like the daemon's evolve jobs) has to group messages at
//! least as accurately as handing `analyze_by_service` the whole file. The
//! second test pins the other half of the bargain — the trie's memory stays
//! bounded by the node cap even under an adversarial stream that never
//! repeats a literal.

use sequence_rtg_repro::evalharness::runner::{
    rtg_group_accuracy, truth_labels, variant_lines, Variant,
};
use sequence_rtg_repro::evalharness::{self};
use sequence_rtg_repro::loghub_synth::generate;
use sequence_rtg_repro::patterndb::PatternStore;
use sequence_rtg_repro::sequence_core::{EvolveOptions, MatchScratch, Scanner};
use sequence_rtg_repro::sequence_rtg::{
    commit_evolution, evolve_plan, LogRecord, RtgConfig, ServiceEvolver,
};
use testkit::prop::{self, Config};
use testkit::prop_assert;
use testkit::rng::Rng;

const LINES: usize = 600;
const SLICE: usize = 50;

/// Stream one dataset variant through a live evolver in daemon-sized
/// slices — plan, commit, apply, publish — then score the final published
/// set's per-line assignments against the ground-truth events.
fn online_group_accuracy(dataset: &str, seed: u64) -> f64 {
    let d = generate(dataset, LINES, seed);
    let lines = variant_lines(&d, Variant::Preprocessed);
    let config = RtgConfig::default();
    let scanner = Scanner::with_options(config.scanner);
    let opts = EvolveOptions {
        analyzer: config.analyzer,
        ..EvolveOptions::default()
    };
    let mut state = ServiceEvolver::new(opts);
    let mut store = PatternStore::in_memory();
    let mut set = sequence_rtg_repro::sequence_core::PatternSet::new();
    for (slice_no, chunk) in lines.chunks(SLICE).enumerate() {
        let owned: Vec<LogRecord> = chunk
            .iter()
            .map(|m| LogRecord::new(dataset, m.as_str()))
            .collect();
        let refs: Vec<&LogRecord> = owned.iter().collect();
        let plan = evolve_plan(&scanner, &mut state, &refs);
        let ids = state.known_ids();
        store.begin().expect("begin");
        let commit = commit_evolution(&mut store, dataset, &plan, &ids, slice_no as u64)
            .expect("commit evolution");
        store.commit().expect("commit");
        assert_eq!(
            commit.uncredited, 0,
            "{dataset} slice {slice_no}: every line must credit a store row"
        );
        set = state.apply_commit(&plan.removed, &commit);
    }
    // Parse step, identical to the batch methodology: match every line
    // against the final set; the matched id is the event assignment.
    let mut scratch = MatchScratch::default();
    let assignments: Vec<String> = lines
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let msg = scanner.scan_parse_only(m);
            match set.match_message_with(&msg, &mut scratch) {
                Some(outcome) => outcome.pattern_id,
                None => format!("unmatched-{i}"),
            }
        })
        .collect();
    evalharness::group_accuracy(&assignments, &truth_labels(&d))
}

#[test]
fn online_evolution_matches_batch_grouping_accuracy() {
    for (dataset, seed) in [("Apache", 71), ("OpenSSH", 72), ("HDFS", 73)] {
        let d = generate(dataset, LINES, seed);
        let batch = rtg_group_accuracy(&d, Variant::Preprocessed, RtgConfig::default());
        let online = online_group_accuracy(dataset, seed);
        assert!(
            online + 1e-9 >= batch,
            "{dataset}: online evolution ({online:.4}) must group at least as \
             accurately as batch mining ({batch:.4})"
        );
        assert!(
            online > 0.5,
            "{dataset}: online accuracy implausibly low ({online:.4})"
        );
    }
}

/// Adversarial high-cardinality stream: every line is a fresh combination of
/// literal words, so the trie wants one path per line forever. Fan-out
/// induction — the first memory valve — is deliberately disabled (the stream
/// models positions whose per-node fan-out stays under the threshold while
/// the *path count* explodes, e.g. correlated composite keys; the induction
/// valve itself is pinned by sequence-core's unit tests). Only LRU eviction
/// can bound the node count here, and it must do so by forgetting evidence,
/// not by rejecting or double-counting input.
#[test]
fn evolver_memory_stays_bounded_under_adversarial_stream() {
    const NODE_CAP: usize = 512;
    let config = Config::cases(8).with_regressions(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/proptest-regressions/evolve_equivalence.txt"
    ));
    prop::check(&config, &prop::range(0u64..u64::MAX), |&seed| {
        let mut rng = Rng::seed_from_u64(seed);
        let opts = EvolveOptions {
            node_cap: NODE_CAP,
            max_literal_fanout: 0,
            ..EvolveOptions::default()
        };
        let mut state = ServiceEvolver::new(opts);
        let scanner = Scanner::new();
        // A fresh all-letters word: never scans as a typed token (typed
        // positions share one trie node and would defeat the adversary).
        let word = |rng: &mut Rng| -> String {
            (0..6)
                .map(|_| char::from(b'a' + (rng.bounded(26) as u8)))
                .collect()
        };
        let mut peak = 0usize;
        for batch_no in 0..40u64 {
            let owned: Vec<LogRecord> = (0..100)
                .map(|_| {
                    // Unique word combinations of varying length: distinct
                    // token counts spread the load across tries, and unique
                    // prefixes defeat the sibling-merge rule (each node's
                    // child key set is distinct).
                    let words = 2 + (rng.bounded(5) as usize);
                    let msg: Vec<String> = (0..words).map(|_| word(&mut rng)).collect();
                    LogRecord::new("adversary", msg.join(" "))
                })
                .collect();
            let refs: Vec<&LogRecord> = owned.iter().collect();
            let plan = evolve_plan(&scanner, &mut state, &refs);
            peak = peak.max(state.node_count());
            prop_assert!(
                state.node_count() <= NODE_CAP,
                "trie grew past the node cap: {} > {NODE_CAP} (batch {batch_no})",
                state.node_count()
            );
            // Every line is still accounted for even while leaves are being
            // evicted underneath the stream.
            let credited: u64 = plan.added.iter().map(|d| d.match_count).sum::<u64>()
                + plan.counts.iter().map(|(_, n)| n).sum::<u64>();
            prop_assert!(
                credited == plan.received,
                "credited {credited} of {} received lines",
                plan.received
            );
        }
        prop_assert!(
            state.evictions() > 0,
            "4000 unique-literal lines under a {NODE_CAP}-node cap must evict"
        );
        prop_assert!(peak > 0, "stream never touched the trie");
        Ok(())
    });
}
