//! End-to-end test of the observability plane: a known workload through a
//! real `seqd` daemon, then every surface the `obs` crate feeds is checked —
//! `/metrics` (lint-clean histograms that reconcile with the ingest
//! counters), `/stats` (per-stage and per-service percentiles), and
//! `/debug/slow` (the bounded slowest-operations ring).
//!
//! One test function on purpose: the `obs` registry is process-global, so a
//! single workload keeps every count assertion exact.

use sequence_rtg_repro::patterndb::PatternStore;
use sequence_rtg_repro::seqd::loadgen;
use sequence_rtg_repro::seqd::server::{start, SeqdConfig};
use sequence_rtg_repro::sequence_rtg::LogRecord;
use sequence_rtg_repro::{jsonlite, loghub_synth, obs};
use std::time::Duration;

const BATCH: usize = 2_000;

fn corpus(seed: u64, total: usize) -> Vec<LogRecord> {
    loghub_synth::generate_stream(loghub_synth::CorpusConfig {
        services: 6,
        total,
        seed,
    })
    .into_iter()
    .map(|item| LogRecord::new(item.service, item.message))
    .collect()
}

/// One counter sample's value from the Prometheus text.
fn series(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("series {name} missing in:\n{metrics}")) as u64
}

#[test]
fn metrics_stats_and_slow_ring_reflect_a_known_workload() {
    let config = SeqdConfig {
        shards: 2,
        batch_size: BATCH,
        queue_capacity: 2 * BATCH,
        ..SeqdConfig::default()
    };
    let handle = start(PatternStore::in_memory(), config, "127.0.0.1:0").expect("start daemon");
    let addr = handle.addr();

    // The known workload: two waves, so the second is mostly matched against
    // the patterns mined from the first.
    let receipt = loadgen::replay_records(addr, &corpus(41, BATCH)).expect("replay A");
    assert_eq!(receipt.accepted, BATCH as u64, "receipt: {receipt:?}");
    loadgen::wait_until_processed(addr, BATCH as u64, Duration::from_secs(120)).expect("drain A");
    let receipt = loadgen::replay_records(addr, &corpus(42, BATCH)).expect("replay B");
    assert_eq!(receipt.accepted, BATCH as u64);
    loadgen::wait_until_processed(addr, 2 * BATCH as u64, Duration::from_secs(120))
        .expect("drain B");
    // Mining runs behind the ingest path; wait for wave A's re-mine to land
    // so the analyze/flush surfaces below have something to show.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let stats = loadgen::control_get(addr, "/stats").expect("/stats");
        let v = jsonlite::parse(&stats).expect("stats json");
        if v.get("remine_runs").and_then(|x| x.as_i64()).unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never re-mined; last stats: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // --- /metrics: every series self-describing and lint-clean.
    let metrics = loadgen::control_get(addr, "/metrics").expect("/metrics");
    let errors = obs::promlint::lint(&metrics);
    assert!(errors.is_empty(), "promlint on /metrics: {errors:?}");

    // The exported name set equals the checked-in contract (the same file
    // ci.sh diffs against a live daemon scrape).
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_names.txt"
    ))
    .expect("golden metric names");
    let expected: Vec<String> = golden.lines().map(str::to_string).collect();
    assert_eq!(
        obs::promlint::metric_names(&metrics),
        expected,
        "exported metric names diverged from tests/golden/metrics_names.txt"
    );

    // The ingest-line histogram records exactly once per ingested line, so
    // its `_count` reconciles with the daemon's own ingest counter — both in
    // the exported text and in the in-process registry the daemon shares
    // with this test.
    let ingested = series(&metrics, "seqd_ingested_total");
    assert_eq!(ingested, 2 * BATCH as u64);
    assert_eq!(series(&metrics, "seqd_ingest_line_seconds_count"), ingested);
    let snap = obs::registry()
        .snapshot("seqd_ingest_line_seconds")
        .expect("preregistered");
    assert_eq!(snap.count, ingested);
    // Matches flow through the match-stage histogram one for one.
    assert_eq!(
        series(&metrics, "seqd_match_seconds_count"),
        series(&metrics, "seqd_matched_total") + series(&metrics, "seqd_unmatched_total"),
    );
    // No record is ever double-counted: the fate counters never run ahead
    // of `ingested` (the over-accounting direction `in_flight`'s
    // saturating subtraction used to silently swallow).
    assert_eq!(series(&metrics, "seqd_counter_drift_total"), 0);

    // --- /stats: per-stage and per-service percentiles.
    let stats = loadgen::control_get(addr, "/stats").expect("/stats");
    let v = jsonlite::parse(&stats).expect("stats json");
    let latency = v.get("latency_ms").expect("latency_ms");
    for stage in ["ingest_line", "queue_wait", "match", "analyze"] {
        let q = latency
            .get(stage)
            .unwrap_or_else(|| panic!("latency_ms.{stage} missing in {stats}"));
        let count = q.get("count").and_then(|x| x.as_i64()).unwrap_or(0);
        assert!(count > 0, "latency_ms.{stage} never recorded: {stats}");
        for p in ["p50", "p95", "p99"] {
            let ms = q.get(p).and_then(|x| x.as_f64());
            assert!(ms.is_some(), "latency_ms.{stage}.{p} missing: {stats}");
        }
        // Quantiles are monotone by construction.
        let p50 = q.get("p50").unwrap().as_f64().unwrap();
        let p99 = q.get("p99").unwrap().as_f64().unwrap();
        assert!(p99 >= p50, "latency_ms.{stage}: p99 {p99} < p50 {p50}");
    }
    let per_service = v
        .get("service_latency_ms")
        .and_then(|x| x.as_object())
        .expect("service_latency_ms");
    assert!(!per_service.is_empty(), "no per-service latency: {stats}");
    for (service, q) in per_service {
        let count = q.get("count").and_then(|x| x.as_i64()).unwrap_or(0);
        assert!(count > 0, "service {service} has empty quantiles: {stats}");
    }

    // --- /debug/slow: the ring holds the slowest operations with their
    // attributes; a flush of BATCH records is always slow enough to place.
    let slow = loadgen::control_get(addr, "/debug/slow").expect("/debug/slow");
    let v = jsonlite::parse(&slow).expect("slow json");
    let ops = v.as_array().expect("slow ops array");
    assert!(!ops.is_empty(), "slow ring empty after {ingested} records");
    let mut last_ns = i64::MAX;
    for op in ops {
        let name = op.get("name").and_then(|x| x.as_str()).expect("op name");
        assert!(!name.is_empty());
        let ns = op.get("dur_ns").and_then(|x| x.as_i64()).expect("dur_ns");
        assert!(ns <= last_ns, "ring not sorted slowest-first: {slow}");
        last_ns = ns;
    }
    assert!(
        ops.iter()
            .any(|op| op.get("name").and_then(|x| x.as_str()) == Some("seqd.flush")),
        "no flush span in the slow ring: {slow}"
    );

    handle.initiate_shutdown();
    let finals = handle.join().expect("join");
    assert!(finals.reconciles(), "{finals:?}");
    assert_eq!(finals.counter_drift(), 0, "{finals:?}");
}
