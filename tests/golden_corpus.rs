//! Golden-corpus regression tests: the exact pattern strings Sequence-RTG
//! discovers on two fixed loghub-synth datasets, snapshotted under
//! `tests/golden/`. The rendered pattern text embeds the scanner's
//! `is_space_before` bookkeeping (paper §III fix #3), so any change to
//! scanning, analysis, or spacing reconstruction shows up as a diff here.
//!
//! Regenerating after an intentional behaviour change:
//!
//! ```text
//! TESTKIT_REGEN_GOLDEN=1 cargo test --test golden_corpus
//! git diff tests/golden/   # review, then commit
//! ```

use sequence_rtg_repro::loghub_synth::generate;
use sequence_rtg_repro::sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 20210906;
const LINES: usize = 600;

fn golden_path(dataset: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.txt", dataset.to_lowercase()))
}

/// Mine `dataset` and render one line per discovered pattern:
/// `<match_count>\t<pattern text>` (sorted, so ordering is stable).
fn mine(dataset: &str) -> String {
    let data = generate(dataset, LINES, GOLDEN_SEED);
    let batch: Vec<LogRecord> = data
        .lines
        .iter()
        .map(|l| LogRecord::new(dataset, l.raw.as_str()))
        .collect();
    let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
    rtg.analyze_by_service(&batch, 0).expect("analysis");
    let mut lines: Vec<String> = rtg
        .store_mut()
        .patterns(None)
        .expect("patterns")
        .into_iter()
        .map(|p| format!("{}\t{}", p.count, p.pattern_text))
        .collect();
    lines.sort();
    let mut out = format!(
        "# golden pattern snapshot: dataset={dataset} lines={LINES} seed={GOLDEN_SEED}\n\
         # regen: TESTKIT_REGEN_GOLDEN=1 cargo test --test golden_corpus\n"
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

fn check_golden(dataset: &str) {
    let actual = mine(dataset);
    let path = golden_path(dataset);
    if std::env::var_os("TESTKIT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             TESTKIT_REGEN_GOLDEN=1 cargo test --test golden_corpus",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "discovered patterns for {dataset} diverged from tests/golden/; if the change is \
         intentional, regenerate with TESTKIT_REGEN_GOLDEN=1 cargo test --test golden_corpus"
    );
}

#[test]
fn openssh_patterns_match_golden_snapshot() {
    check_golden("OpenSSH");
}

#[test]
fn hdfs_patterns_match_golden_snapshot() {
    check_golden("HDFS");
}

#[test]
fn golden_mining_is_deterministic() {
    // The snapshot comparison is only meaningful if mining the same corpus
    // twice is bit-identical; pin that assumption down separately.
    assert_eq!(mine("OpenSSH"), mine("OpenSSH"));
}

#[test]
fn golden_patterns_preserve_exact_spacing() {
    // §III fix #3: rendered patterns reconstruct exact spacing, so golden
    // lines never contain the double spaces a naive join would produce
    // (the templates are single-spaced) and re-parse to the same render.
    use sequence_rtg_repro::sequence_core::Pattern;
    for dataset in ["OpenSSH", "HDFS"] {
        let snapshot = mine(dataset);
        for line in snapshot.lines().filter(|l| !l.starts_with('#')) {
            let text = line.split_once('\t').expect("count\\tpattern").1;
            assert!(!text.contains("  "), "unexpected double space in {text:?}");
            if let Ok(p) = Pattern::parse(text) {
                assert_eq!(p.render(), text, "render/parse must be stable for {text:?}");
            }
        }
    }
}
