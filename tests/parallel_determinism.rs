//! Parallel determinism: `analyze_by_service_parallel(batch, now, threads)`
//! must produce byte-identical pattern sets and match counts vs. the
//! sequential path for every thread count — the paper's scale-out claim
//! ("there is no crossover with patterns between different services")
//! depends on sharding being observationally invisible.

use sequence_rtg_repro::loghub_synth::{generate_stream, CorpusConfig};
use sequence_rtg_repro::sequence_rtg::{LogRecord, RtgConfig, SequenceRtg};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A multi-service loghub-synth corpus (24 virtual services, Zipf volumes).
fn corpus() -> Vec<LogRecord> {
    generate_stream(CorpusConfig {
        services: 24,
        total: 4_000,
        seed: 77,
    })
    .into_iter()
    .map(|i| LogRecord::new(i.service, i.message))
    .collect()
}

/// Full store snapshot: every discovered pattern with its identity and
/// counters, sorted for byte-for-byte comparison.
fn snapshot(rtg: &mut SequenceRtg) -> Vec<(String, String, String, u64)> {
    let mut rows: Vec<(String, String, String, u64)> = rtg
        .store_mut()
        .patterns(None)
        .expect("patterns")
        .into_iter()
        .map(|p| (p.service, p.id, p.pattern_text, p.count))
        .collect();
    rows.sort();
    rows
}

#[test]
fn parallel_equals_sequential_for_all_thread_counts() {
    let batch = corpus();
    let mut seq = SequenceRtg::in_memory(RtgConfig::default());
    let baseline = seq
        .analyze_by_service(&batch, 7)
        .expect("sequential analysis");
    let baseline_snapshot = snapshot(&mut seq);
    assert!(
        !baseline_snapshot.is_empty(),
        "the corpus must discover patterns"
    );

    for threads in THREAD_COUNTS {
        let mut par = SequenceRtg::in_memory(RtgConfig::default());
        let report = par
            .analyze_by_service_parallel(&batch, 7, threads)
            .expect("parallel analysis");
        assert_eq!(report.received, baseline.received, "threads={threads}");
        assert_eq!(
            report.matched_known, baseline.matched_known,
            "threads={threads}"
        );
        assert_eq!(report.analyzed, baseline.analyzed, "threads={threads}");
        assert_eq!(
            report.new_patterns, baseline.new_patterns,
            "threads={threads}"
        );
        assert_eq!(report.services, baseline.services, "threads={threads}");
        assert_eq!(snapshot(&mut par), baseline_snapshot, "threads={threads}");
    }
}

#[test]
fn second_batch_match_counts_identical_across_thread_counts() {
    let batch = corpus();
    let mut seq = SequenceRtg::in_memory(RtgConfig::default());
    seq.analyze_by_service(&batch, 1).expect("warm-up");
    let baseline = seq.analyze_by_service(&batch, 2).expect("second batch");
    let baseline_snapshot = snapshot(&mut seq);
    assert_eq!(
        baseline.matched_known, baseline.received,
        "second pass fully matches"
    );

    for threads in THREAD_COUNTS {
        let mut par = SequenceRtg::in_memory(RtgConfig::default());
        par.analyze_by_service_parallel(&batch, 1, threads)
            .expect("warm-up");
        let report = par
            .analyze_by_service_parallel(&batch, 2, threads)
            .expect("second batch");
        assert_eq!(
            report.matched_known, baseline.matched_known,
            "threads={threads}"
        );
        assert_eq!(report.new_patterns, 0, "threads={threads}");
        // Per-pattern match counters must agree exactly, not just in total.
        assert_eq!(snapshot(&mut par), baseline_snapshot, "threads={threads}");
    }
}

#[test]
fn parallel_is_idempotent_per_thread_count() {
    // The same thread count twice yields the same store — no hidden
    // scheduling nondeterminism leaks into results.
    let batch = corpus();
    for threads in [2, 8] {
        let run = |_| {
            let mut rtg = SequenceRtg::in_memory(RtgConfig::default());
            rtg.analyze_by_service_parallel(&batch, 3, threads)
                .expect("analysis");
            snapshot(&mut rtg)
        };
        assert_eq!(run(0), run(1), "threads={threads}");
    }
}
